"""Post-training quantized inference: int8 and float16 model variants.

The distinguisher decides CIPHER vs RANDOM by thresholding an
*accuracy*, so inference precision only matters when it moves verdicts
— which leaves a lot of headroom.  :func:`quantize_model` converts a
trained float :class:`~repro.nn.model.Sequential` into a
:class:`QuantizedSequential` under one of two schemes:

``float16``
    Weight storage halves (every parameter is stored as IEEE float16);
    compute stays float32 — weights are expanded once at load.  A
    memory/disk win with float-level latency.

``int8``
    Dense and Conv1D weight matrices are quantized per-tensor
    symmetric (``scale = max|W| / 127``) to int8, and their matmuls run
    on integers: activations are quantized **per row** (dynamic
    asymmetric uint8), the product accumulates exactly in int32, and
    one fused dequantization step maps back to float32::

        q_x[i, :] = clip(rint(x[i, :] / s_i) + z_i, 0, 255)     (uint8)
        acc       = q_x @ q_w                                    (int32)
        y[i, :]   = (acc[i, :] - z_i * colsum(q_w)) * (s_i * s_w) + b

    Per-row (not per-batch) activation scales are what make batched
    and unbatched predictions *bitwise identical* — each row's
    ``(s_i, z_i)`` depends only on that row, and the integer matmul is
    exact no matter how rows are grouped — so the micro-batching
    engine's coalescing guarantee survives quantization unchanged.
    LSTM weights are quantized weight-only (stored int8, expanded to
    float32 at load): recurrent state is unbounded-ranged and cheap
    relative to the projection GEMMs, so dynamic activation
    quantization buys little there.  Biases always stay float32.

The integer matmul runs through the compiled VNNI kernel when
:mod:`repro.nn.backend.qkernel` is available and falls back to a
float64 GEMM on the integer-valued operands otherwise — every u8×s8
product is ≤ 2^15 and practical reductions stay far below 2^53, so the
fallback is exact and **bit-identical** to the kernel (``REPRO_QUANT``
selects: ``auto`` | ``kernel`` | ``numpy``).

Distinguisher inputs are bit vectors (values in {0, 1}), so the first
quantized layer introduces *zero* input error; accumulated weight
rounding is re-measured on a held-out set at registration time and the
accuracy delta is recorded in the registry manifest
(:meth:`~repro.serve.registry.ModelRegistry.register_quantized`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.nn.backend import qkernel
from repro.nn.conv import Conv1D
from repro.nn.layers import Dense
from repro.nn.model import Sequential, _layer_class

#: Supported quantization schemes.
SCHEMES = ("int8", "float16")

#: Bump when the quantized artifact layout changes incompatibly.
QUANT_FORMAT_VERSION = 1

#: Weight matrices smaller than this stay float32 under the int8
#: scheme: per-row activation quantization costs a full pass over the
#: input, which only pays for itself when it shrinks a large weight
#: stream (the int8 win is bandwidth, and tiny GEMMs are not
#: bandwidth-bound).  2^15 elements ≈ a 128x256 Dense kernel.
INT8_MIN_WEIGHT_ELEMS = 1 << 15


# -- weight/activation quantization primitives -----------------------------


def quantize_weight(w: np.ndarray) -> Tuple[np.ndarray, float]:
    """Per-tensor symmetric int8: ``(q, scale)`` with ``q*scale ~ w``."""
    w = np.asarray(w, dtype=np.float64)
    peak = float(np.abs(w).max()) if w.size else 0.0
    scale = peak / 127.0 if peak > 0.0 else 1.0
    q = np.clip(np.rint(w / scale), -127, 127).astype(np.int8)
    return q, scale


def quantize_rows(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dynamic asymmetric uint8 quantization, one ``(scale, zp)`` per row.

    Returns ``(q_u8, scales_f32, zero_points_i32)``.  The range always
    includes zero so exact zeros stay exact, and every quantity depends
    only on its own row — the property that keeps batched and unbatched
    inference bitwise identical.  All-zero rows get ``scale = 0`` and
    quantize to the zero point exactly.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    lo = np.minimum(x.min(axis=1), np.float32(0.0))
    hi = np.maximum(x.max(axis=1), np.float32(0.0))
    scale = (hi - lo) / np.float32(255.0)
    inv = np.zeros_like(scale)
    np.divide(np.float32(1.0), scale, out=inv, where=scale > 0)
    zp = np.rint(-lo * inv).astype(np.int32)
    # Stay in float32 end to end (zp fits exactly) and reuse one
    # buffer: the intermediate passes are a large share of quantized
    # inference time.
    buf = x * inv[:, None]
    np.rint(buf, out=buf)
    buf += zp.astype(np.float32)[:, None]
    np.clip(buf, 0, 255, out=buf)
    return buf.astype(np.uint8), scale, zp


class _Int8Linear:
    """An int8 weight matrix + bias and the constants its matmuls need.

    A missing bias is stored as a zero vector so the numpy fallback and
    the fused kernel (which always adds its bias operand) perform the
    identical float op sequence.
    """

    def __init__(self, q: np.ndarray, scale: float, bias: Optional[np.ndarray]):
        self.q = np.ascontiguousarray(q, dtype=np.int8)
        self.scale = np.float32(scale)
        # colsum(q_w) is the zero-point correction term; |colsum| ≤
        # 127 * k so int32 holds it (and z_i * colsum ≤ 255 * 127 * k
        # stays in int32 for any practical k).
        self.colsum = self.q.astype(np.int32).sum(axis=0)
        self.bias = (
            np.zeros(self.m, dtype=np.float32)
            if bias is None
            else np.ascontiguousarray(bias, dtype=np.float32)
        )
        self._kernel_data: Optional[Tuple] = None

    @property
    def k(self) -> int:
        return self.q.shape[0]

    @property
    def m(self) -> int:
        return self.q.shape[1]

    def kernel_data(self) -> Tuple:
        """``(packed, kp, mp, colsum_padded, bias_padded)`` for the
        compiled kernel, built once on first use."""
        if self._kernel_data is None:
            packed, kp, mp = qkernel.pack_weights(self.q)
            colsum_padded = np.zeros(mp, dtype=np.int32)
            colsum_padded[: self.m] = self.colsum
            bias_padded = np.zeros(mp, dtype=np.float32)
            bias_padded[: self.m] = self.bias
            self._kernel_data = (packed, kp, mp, colsum_padded, bias_padded)
        return self._kernel_data


def int8_affine(x: np.ndarray, linear: _Int8Linear) -> np.ndarray:
    """Quantize-matmul-dequantize in one step: float32 in, float32 out.

    Kernel and numpy paths compute the identical float op sequence
    (int32-exact accumulation and correction, then ``f32(corr) * rs +
    bias`` with mul-then-add rounding), so they are bit-identical.
    """
    if qkernel.kernel_in_use():
        packed, kp, mp, colsum_padded, bias_padded = linear.kernel_data()
        x = np.ascontiguousarray(x, dtype=np.float32)
        out = qkernel.qaffine(
            x, packed, linear.scale, kp, mp, colsum_padded, bias_padded
        )
        if mp != linear.m:
            out = np.ascontiguousarray(out[:, : linear.m])
        return out
    q, scale, zp = quantize_rows(x)
    rowscale = scale * linear.scale
    acc = (q.astype(np.float64) @ linear.q.astype(np.float64)).astype(np.int32)
    corrected = acc - zp[:, None] * linear.colsum[None, :]
    out = corrected.astype(np.float32)
    out *= rowscale[:, None]
    out += linear.bias
    return out


# -- quantized execution layers --------------------------------------------


class _Int8Dense(Dense):
    """Inference-only Dense whose matmul runs on int8 weights."""

    def __init__(self, units, use_bias, linear: _Int8Linear):
        super().__init__(units, use_bias=use_bias)
        self._linear = linear
        self.built = True

    def forward(self, x, training=False):
        if training:
            raise TrainingError("quantized layers are inference-only")
        return int8_affine(x, self._linear)


class _Int8Conv1D(Conv1D):
    """Inference-only Conv1D: float im2col, quantized column matmul."""

    def __init__(
        self, filters, kernel_size, padding, use_bias, linear: _Int8Linear
    ):
        super().__init__(
            filters, kernel_size, padding=padding, use_bias=use_bias
        )
        self._linear = linear
        self.built = True

    def forward(self, x, training=False):
        if training:
            raise TrainingError("quantized layers are inference-only")
        n = x.shape[0]
        cols, padded_steps = self._im2col(x)
        out_steps = padded_steps - self.kernel_size + 1
        out = int8_affine(cols, self._linear)
        return out.reshape(n, out_steps, self.filters)


# -- the quantized model ---------------------------------------------------


class QuantizedSequential:
    """A quantized, inference-only variant of a :class:`Sequential`.

    Holds the parent's architecture config plus the quantized parameter
    arrays, and materialises an executable float32 stack on
    construction.  Exposes the inference subset of the ``Sequential``
    API (``predict`` / ``predict_proba`` / ``predict_classes``,
    ``input_shape``, ``dtype``), which is all the serving engine needs,
    plus ``save`` / ``load`` / ``digest`` for registry storage.
    """

    def __init__(self, config: dict, arrays: Dict[str, np.ndarray], scheme: str):
        if scheme not in SCHEMES:
            known = ", ".join(SCHEMES)
            raise TrainingError(
                f"unknown quantization scheme {scheme!r}; known: {known}"
            )
        self.scheme = scheme
        self.config = config
        self.arrays = dict(arrays)
        self.input_shape: Tuple[int, ...] = tuple(
            int(s) for s in config["input_shape"]
        )
        #: Compute dtype of the executable stack (weight *storage* is
        #: int8/float16; all arithmetic outside the integer matmuls is
        #: float32).
        self.dtype = np.dtype(np.float32)
        self._exec = self._build_exec()

    # -- execution stack ---------------------------------------------------

    def _layer_arrays(self, index: int):
        """Yield ``(slot, plain, q, scale)`` per param of layer ``index``."""
        slot = 0
        while True:
            base = f"layer{index}_param{slot}"
            if base in self.arrays:
                yield slot, self.arrays[base], None, None
            elif f"{base}_q" in self.arrays:
                yield (
                    slot,
                    None,
                    self.arrays[f"{base}_q"],
                    float(self.arrays[f"{base}_scale"]),
                )
            else:
                return
            slot += 1

    def _dequantized_params(self, index: int):
        """Layer ``index``'s parameters expanded to float32."""
        params = []
        for _slot, plain, q, scale in self._layer_arrays(index):
            if plain is not None:
                params.append(plain.astype(np.float32))
            else:
                params.append(q.astype(np.float32) * np.float32(scale))
        return params

    def _build_exec(self) -> Sequential:
        layers = []
        for index, entry in enumerate(self.config["layers"]):
            cls = _layer_class(entry["class"])
            cfg = entry["config"]
            stored = list(self._layer_arrays(index))
            quantized = next(
                ((q, scale) for _slot, plain, q, scale in stored if q is not None),
                None,
            )
            if cls in (Dense, Conv1D) and quantized is not None:
                use_bias = cfg.get("use_bias", True)
                bias = (
                    self.arrays[f"layer{index}_param1"].astype(np.float32)
                    if use_bias
                    else None
                )
                # The matmul operand is 2-D: the Dense kernel as stored,
                # or the (k*channels, filters) reshape the conv's im2col
                # columns multiply against.
                q2 = quantized[0].reshape(-1, quantized[0].shape[-1])
                linear = _Int8Linear(q2, quantized[1], bias)
                if cls is Dense:
                    layers.append(_Int8Dense(cfg["units"], use_bias, linear))
                else:
                    layers.append(
                        _Int8Conv1D(
                            cfg["filters"], cfg["kernel_size"],
                            cfg.get("padding", "valid"), use_bias, linear,
                        )
                    )
                continue
            layer = cls(**cfg)
            params = self._dequantized_params(index)
            if params:
                layer.params = params
                layer.grads = [np.zeros_like(p) for p in params]
                layer.built = True
            layers.append(layer)
        model = Sequential(layers)
        model.dtype = self.dtype
        model.build(self.input_shape, rng=0)
        return model

    # -- inference ---------------------------------------------------------

    def predict(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        return self._exec.predict(x, batch_size)

    def predict_proba(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        return self._exec.predict_proba(x, batch_size)

    def predict_classes(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        return self._exec.predict_classes(x, batch_size)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy against integer ``labels``."""
        labels = np.asarray(labels)
        return float((self.predict_classes(x) == labels).mean())

    def count_params(self) -> int:
        """Parameter count of the parent architecture."""
        total = 0
        for index in range(len(self.config["layers"])):
            for _slot, plain, q, _scale in self._layer_arrays(index):
                total += int((plain if plain is not None else q).size)
        return total

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist scheme + architecture + quantized arrays to ``.npz``."""
        config = dict(self.config)
        config["quant_scheme"] = self.scheme
        config["quant_format_version"] = QUANT_FORMAT_VERSION
        arrays = {
            "config": np.frombuffer(
                json.dumps(config).encode(), dtype=np.uint8
            )
        }
        arrays.update(self.arrays)
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "QuantizedSequential":
        """Rebuild a variant saved with :meth:`save`."""
        with np.load(path) as data:
            config = json.loads(bytes(data["config"]).decode())
            scheme = config.pop("quant_scheme", None)
            config.pop("quant_format_version", None)
            if scheme is None:
                raise TrainingError(
                    f"{path!r} is not a quantized model artifact"
                )
            arrays = {
                key: np.array(data[key])
                for key in data.files
                if key != "config"
            }
        return cls(config, arrays, scheme)

    def digest(self) -> str:
        """SHA-256 content address over scheme, config, and array bytes."""
        config = dict(self.config)
        config["quant_scheme"] = self.scheme
        digest = hashlib.sha256()
        digest.update(json.dumps(config, sort_keys=True).encode())
        for key in sorted(self.arrays):
            array = self.arrays[key]
            digest.update(key.encode())
            digest.update(str(array.dtype).encode())
            digest.update(str(array.shape).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()


def is_quantized_artifact(path: str) -> bool:
    """True when ``path`` is a :meth:`QuantizedSequential.save` file."""
    try:
        with np.load(path) as data:
            if "config" not in data.files:
                return False
            config = json.loads(bytes(data["config"]).decode())
    except (OSError, ValueError, json.JSONDecodeError):
        return False
    return "quant_scheme" in config


def quantize_model(
    model: Sequential,
    scheme: str = "int8",
    min_weight_elems: int = INT8_MIN_WEIGHT_ELEMS,
) -> QuantizedSequential:
    """Produce a post-training quantized variant of a built ``model``.

    ``scheme`` is ``"int8"`` (integer matmuls for Dense/Conv1D,
    weight-only for LSTM) or ``"float16"`` (half-precision weight
    storage, float32 compute).  Under ``int8``, weight matrices with
    fewer than ``min_weight_elems`` elements stay float32 — the
    per-row activation quantization pass costs more than such a small
    GEMM saves (pass ``0`` to quantize everything).  The parent model
    is not modified.
    """
    if scheme not in SCHEMES:
        known = ", ".join(SCHEMES)
        raise TrainingError(
            f"unknown quantization scheme {scheme!r}; known: {known}"
        )
    if model.input_shape is None:
        raise TrainingError("build the model before quantizing it")
    config = {
        "input_shape": list(model.input_shape),
        "dtype": "float32",
        "layers": [
            {"class": layer.name, "config": layer.get_config()}
            for layer in model.layers
        ],
    }
    arrays: Dict[str, np.ndarray] = {}
    for index, layer in enumerate(model.layers):
        for slot, param in enumerate(layer.params):
            base = f"layer{index}_param{slot}"
            if scheme == "float16":
                arrays[base] = param.astype(np.float16)
            elif param.ndim >= 2 and param.size >= min_weight_elems:
                q, scale = quantize_weight(param)
                arrays[f"{base}_q"] = q
                arrays[f"{base}_scale"] = np.float32(scale)
            else:
                arrays[base] = param.astype(np.float32)
    return QuantizedSequential(config, arrays, scheme)
