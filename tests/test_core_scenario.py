"""Tests for the distinguisher scenarios."""

import numpy as np
import pytest

from repro.core.scenario import (
    GimliCipherScenario,
    GimliHashScenario,
    GimliPermutationScenario,
    SpeckRealOrRandomScenario,
    ToySpeckScenario,
)
from repro.errors import DistinguisherError
from repro.utils.rng import make_rng


class TestGimliHashScenario:
    def test_difference_masks_match_paper_bytes(self):
        """Bytes 4 and 12 are the LSBs of rate words 1 and 3."""
        scenario = GimliHashScenario(rounds=8)
        masks = scenario.difference_masks
        assert masks.shape == (2, 4)
        assert masks[0, 1] == 1 and masks[0, [0, 2, 3]].sum() == 0
        assert masks[1, 3] == 1 and masks[1, [0, 1, 2]].sum() == 0

    def test_feature_bits(self):
        assert GimliHashScenario().feature_bits == 128

    def test_dataset_shapes_and_labels(self, rng):
        scenario = GimliHashScenario(rounds=6)
        x, y = scenario.generate_dataset(50, rng=rng)
        assert x.shape == (100, 128)
        assert x.dtype == np.float32
        assert sorted(np.unique(y)) == [0, 1]
        assert (np.bincount(y) == 50).all()

    def test_base_inputs_respect_block_len(self, rng):
        scenario = GimliHashScenario(rounds=6, block_len=7, diff_bytes=(1, 4))
        inputs = scenario.sample_base_inputs(10, make_rng(rng))
        raw = np.frombuffer(inputs.astype("<u4").tobytes(), dtype=np.uint8)
        raw = raw.reshape(10, 16)
        assert (raw[:, 7:] == 0).all()

    def test_diff_byte_outside_block_rejected(self):
        with pytest.raises(DistinguisherError):
            GimliHashScenario(diff_bytes=(4, 15), block_len=15)

    def test_invalid_block_len(self):
        with pytest.raises(DistinguisherError):
            GimliHashScenario(block_len=16)

    def test_need_two_differences(self):
        with pytest.raises(DistinguisherError):
            GimliHashScenario(diff_bytes=(4,))

    def test_dataset_deterministic_given_seed(self):
        scenario = GimliHashScenario(rounds=6)
        x1, y1 = scenario.generate_dataset(20, rng=99)
        x2, y2 = scenario.generate_dataset(20, rng=99)
        assert (x1 == x2).all() and (y1 == y2).all()

    def test_signal_at_low_rounds(self, rng):
        """At 2 rounds the two classes have visibly different
        output-difference distributions."""
        scenario = GimliHashScenario(rounds=2)
        x, y = scenario.generate_dataset(200, rng=rng)
        mean0 = x[y == 0].mean(axis=0)
        mean1 = x[y == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).max() > 0.5


class TestGimliCipherScenario:
    def test_dataset_shapes(self, rng):
        scenario = GimliCipherScenario(total_rounds=6)
        x, y = scenario.generate_dataset(30, rng=rng)
        assert x.shape == (60, 128)

    def test_requires_context(self):
        scenario = GimliCipherScenario()
        with pytest.raises(DistinguisherError):
            scenario.pipeline(np.zeros((2, 4), dtype=np.uint32), None)

    def test_invalid_diff_byte(self):
        with pytest.raises(DistinguisherError):
            GimliCipherScenario(diff_bytes=(4, 16))

    def test_nonce_respecting_keys_differ(self, rng):
        scenario = GimliCipherScenario()
        ctx = scenario.sample_context(8, make_rng(rng))
        assert len({row.tobytes() for row in ctx}) == 8


class TestGimliPermutationScenario:
    def test_default_differences(self):
        scenario = GimliPermutationScenario(rounds=4)
        assert scenario.num_classes == 2
        assert scenario.feature_bits == 384

    def test_observe_words_subset(self, rng):
        scenario = GimliPermutationScenario(rounds=4, observe_words=range(4))
        x, y = scenario.generate_dataset(10, rng=rng)
        assert x.shape == (20, 128)

    def test_invalid_observe_words(self):
        with pytest.raises(DistinguisherError):
            GimliPermutationScenario(observe_words=[12])
        with pytest.raises(DistinguisherError):
            GimliPermutationScenario(observe_words=[])

    def test_custom_differences(self, rng):
        diffs = np.zeros((3, 12), dtype=np.uint32)
        diffs[0, 0] = 1
        diffs[1, 5] = 2
        diffs[2, 11] = 4
        scenario = GimliPermutationScenario(rounds=2, differences=diffs)
        x, y = scenario.generate_dataset(5, rng=rng)
        assert sorted(np.unique(y)) == [0, 1, 2]

    def test_zero_difference_rejected(self):
        diffs = np.zeros((2, 12), dtype=np.uint32)
        diffs[0, 0] = 1
        with pytest.raises(DistinguisherError):
            GimliPermutationScenario(differences=diffs)


class TestToySpeckScenario:
    def test_dataset_shapes(self, rng):
        scenario = ToySpeckScenario(rounds=3)
        x, y = scenario.generate_dataset(25, rng=rng)
        assert x.shape == (50, 16)
        assert scenario.feature_bits == 16

    def test_invalid_delta(self):
        with pytest.raises(DistinguisherError):
            ToySpeckScenario(deltas=(0, 1))
        with pytest.raises(DistinguisherError):
            ToySpeckScenario(deltas=(1 << 16, 1))

    def test_masks_split_words(self):
        scenario = ToySpeckScenario(deltas=(0x1234, 0x0001))
        assert scenario.difference_masks[0, 0] == 0x12
        assert scenario.difference_masks[0, 1] == 0x34


class TestRandomOracleDataset:
    def test_random_oracle_removes_signal(self, rng):
        scenario = GimliHashScenario(rounds=2)
        oracle = scenario.random_oracle(rng=7, memoize=False)
        x, y = scenario.generate_dataset(200, rng=rng, oracle=oracle)
        mean0 = x[y == 0].mean(axis=0)
        mean1 = x[y == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).max() < 0.25


class TestSpeckRealOrRandom:
    def test_dataset_shapes(self, rng):
        scenario = SpeckRealOrRandomScenario(rounds=4)
        x, y = scenario.generate_dataset(100, rng=rng)
        assert x.shape == (200, 64)
        assert (np.bincount(y) == 100).all()

    def test_one_round_pairs_fully_determined(self, rng):
        """At 1 round Gohr's difference is deterministic, so real pairs
        XOR to a constant while random pairs don't."""
        scenario = SpeckRealOrRandomScenario(rounds=1)
        x, y = scenario.generate_dataset(200, rng=rng)
        c0 = x[:, :32]
        c1 = x[:, 32:]
        diffs = (c0 != c1).astype(int)
        real_patterns = {tuple(row) for row in diffs[y == 1]}
        random_patterns = {tuple(row) for row in diffs[y == 0]}
        assert len(real_patterns) == 1
        assert len(random_patterns) > 10

    def test_invalid_delta(self):
        with pytest.raises(DistinguisherError):
            SpeckRealOrRandomScenario(delta=0)

    def test_invalid_sample_count(self, rng):
        with pytest.raises(DistinguisherError):
            SpeckRealOrRandomScenario().generate_dataset(0, rng=rng)
