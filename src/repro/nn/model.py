"""The ``Sequential`` model: Keras-shaped training on numpy layers.

Supports ``compile`` / ``fit`` / ``evaluate`` / ``predict``, shuffled
mini-batches, validation splits, per-epoch history, parameter counting
(the Table 3 column), and ``.npz`` persistence standing in for the
paper's ``.h5`` model files.

Two hot-path features live here:

* **Dtype policy.**  ``compile(..., dtype="float32")`` switches the
  whole stack (parameters, activations, targets, optimizer state) to
  float32, roughly halving matmul time and memory traffic.  The default
  stays float64 so the exact-gradient tests are unaffected.
* **Fused softmax + cross-entropy.**  When the last layer is ``Softmax``
  and the loss is probability-space ``CategoricalCrossentropy``, the
  training step backpropagates ``(p - y) / n`` directly into the layer
  below the softmax, skipping the softmax Jacobian product (the two are
  algebraically identical; the kernel-equivalence tests check it).

``fit`` is instrumented through :mod:`repro.obs`: per-epoch
loss/metric events go to the structured logger (``verbose=True`` just
raises them to ``info`` so the default text sink renders them),
``train.fit``/``train.epoch`` spans feed the tracer, epoch counters and
durations the process metrics registry, and ``REPRO_PROFILE=1``
aggregates per-layer forward/backward time (see
:mod:`repro.obs.profile`).  None of it touches an RNG stream, so an
instrumented run is bit-identical to a bare one.
"""

from __future__ import annotations

import json
import os
import queue as queue_mod
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LayerError, TrainingError
from repro.obs import events as obs_events
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs.trace import span
from repro.nn import conv as conv_mod
from repro.nn import layers as layers_mod
from repro.nn import recurrent as recurrent_mod
from repro.nn.backend import Backend, get_backend
from repro.nn.callbacks import Callback, History
from repro.nn.layers import Layer, Softmax
from repro.nn.losses import (
    LOSSES,
    CategoricalCrossentropy,
    Loss,
    get_loss,
    one_hot,
)
from repro.nn.metrics import get_metric
from repro.nn.optimizers import OPTIMIZERS, Optimizer, get_optimizer
from repro.utils.rng import make_rng

_LAYER_MODULES = (layers_mod, conv_mod, recurrent_mod)

_log = obs_log.get_logger("repro.nn")


def _layer_class(name: str):
    for module in _LAYER_MODULES:
        cls = getattr(module, name, None)
        if isinstance(cls, type) and issubclass(cls, Layer):
            return cls
    raise LayerError(f"unknown layer class {name!r} in saved model")


#: Rows per gradient shard in data-parallel training.  The shard plan is
#: a function of the batch size alone — never of the worker count — so
#: ``fit(data_parallel=N)`` is bit-identical for every ``N``; changing
#: this constant changes the shard boundaries and hence the (still
#: deterministic) floating-point reduction order.
DATA_PARALLEL_SHARD_ROWS = 64


def data_parallel_from_env() -> Optional[int]:
    """Read ``REPRO_DATA_PARALLEL`` (unset -> ``None``: plain fit path)."""
    raw = os.environ.get("REPRO_DATA_PARALLEL", "")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise TrainingError(
            f"REPRO_DATA_PARALLEL must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise TrainingError(
            f"REPRO_DATA_PARALLEL must be a positive integer, got {value}"
        )
    return value


def _tree_reduce(values):
    """Sum ``values`` with a balanced pairwise tree.

    The reduction order is a function of ``len(values)`` alone, so the
    floating-point result is identical no matter how many workers
    produced the elements — the same guarantee
    :mod:`repro.core.parallel` gives dataset shards.
    """
    values = list(values)
    while len(values) > 1:
        paired = [
            values[i] + values[i + 1] for i in range(0, len(values) - 1, 2)
        ]
        if len(values) % 2:
            paired.append(values[-1])
        values = paired
    return values[0]


class _DataParallel:
    """Shard-gradient training steps for :meth:`Sequential.fit`.

    Each mini-batch is cut into fixed-size shards
    (:data:`DATA_PARALLEL_SHARD_ROWS` rows, worker-count independent).
    Every shard runs a full forward/backward pass on a model replica —
    the replicas *share* the master's parameter arrays (reads only;
    the sole writer is the optimizer, which runs after all shards
    finish) but own their activation caches and gradient buffers, so
    ``workers`` shards can proceed concurrently in threads (numpy/BLAS
    release the GIL on the heavy kernels).  Shard gradients are scaled
    to batch-sum contributions and combined with :func:`_tree_reduce`
    in shard order; the single optimizer update then runs on the master.

    Because the shard plan, the per-shard arithmetic and the reduction
    tree are all independent of ``workers``, the trained parameters are
    **bit-identical for any worker count** — pinned in
    ``tests/test_nn_data_parallel.py``.
    """

    def __init__(self, model: "Sequential", workers: int):
        if workers < 1:
            raise TrainingError(
                f"data_parallel must be >= 1, got {workers}"
            )
        self.model = model
        self.workers = int(workers)
        self.fused = model._fused_softmax_cce()
        self.stochastic = any(layer.stochastic for layer in model.layers)
        self.master_params, self.master_grads = model._gather()
        # Replica 0 is the master itself; clones cover the rest.  A
        # replica is only ever used by one shard at a time (exclusive
        # checkout from ``self.pool``).
        replicas = [model]
        for _ in range(self.workers - 1):
            replicas.append(self._clone_replica())
        self.pool: "queue_mod.Queue" = queue_mod.Queue()
        for replica in replicas:
            self.pool.put(replica)
        self.executor = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers > 1
            else None
        )

    def _clone_replica(self) -> "Sequential":
        model = self.model
        clone = Sequential(
            [
                _layer_class(layer.name)(**layer.get_config())
                for layer in model.layers
            ]
        )
        clone.dtype = model.dtype
        clone.backend = model.backend
        clone.loss = model.loss  # losses are stateless value/grad maps
        clone.build(model.input_shape, rng=0)
        # Share the master's parameter arrays: replicas only read them
        # during shard passes, and the optimizer's in-place update is
        # then visible to every replica with no per-step copying.
        offset = 0
        for layer in clone.layers:
            if not layer.trainable:
                continue
            for j in range(len(layer.params)):
                layer.params[j] = self.master_params[offset]
                offset += 1
        assert offset == len(self.master_params)
        return clone

    def close(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True)

    def _shard_pass(self, xb, yb, n_total, rng):
        """One shard's forward/backward on an exclusively-held replica."""
        replica = self.pool.get()
        try:
            pred = replica.forward(xb, training=True, rng=rng)
            if self.fused:
                loss_value = replica.loss.value(yb, pred)
                # Scale by 1/n_total (not 1/shard): the shard gradients
                # are then batch-sum contributions and the tree reduce
                # yields exactly the full-batch mean gradient.
                grad = (pred - yb) / n_total
                for index in range(len(replica.layers) - 2, -1, -1):
                    grad = replica.layers[index].backward(grad)
                    if grad is None:
                        break
            else:
                loss_value, grad = replica.loss(yb, pred)
                grad = grad * (yb.shape[0] / n_total)
                replica.backward(grad)
            _, grads = replica._gather()
            # The replica's buffers are overwritten by its next shard,
            # so the contribution must be copied out.
            return loss_value, pred, [g.copy() for g in grads]
        finally:
            self.pool.put(replica)

    def step(self, xb, yb, generator) -> Tuple[float, np.ndarray]:
        """One data-parallel train step; returns ``(loss, predictions)``."""
        n = xb.shape[0]
        bounds = list(range(0, n, DATA_PARALLEL_SHARD_ROWS))
        shards = [
            (begin, xb[begin:begin + DATA_PARALLEL_SHARD_ROWS],
             yb[begin:begin + DATA_PARALLEL_SHARD_ROWS])
            for begin in bounds
        ]
        # Stochastic layers (Dropout) get one pre-derived stream per
        # shard — drawn in shard order, so the stream plan is as
        # worker-count independent as the shard plan.
        if self.stochastic:
            seeds = generator.integers(0, 2**63 - 1, size=len(shards))
            rngs = [make_rng(int(seed)) for seed in seeds]
        else:
            rngs = [None] * len(shards)
        if self.executor is None or len(shards) == 1:
            results = [
                self._shard_pass(sx, sy, n, rng)
                for (_, sx, sy), rng in zip(shards, rngs)
            ]
        else:
            futures = [
                self.executor.submit(self._shard_pass, sx, sy, n, rng)
                for (_, sx, sy), rng in zip(shards, rngs)
            ]
            results = [future.result() for future in futures]
        loss_value = float(
            _tree_reduce(
                [value * shard[1].shape[0] for value, shard
                 in zip((r[0] for r in results), shards)]
            ) / n
        )
        pred = np.concatenate([r[1] for r in results], axis=0)
        for j, buffer in enumerate(self.master_grads):
            np.copyto(buffer, _tree_reduce([r[2][j] for r in results]))
        self.model.optimizer.update(self.master_params, self.master_grads)
        return loss_value, pred


def _registry_name(instance, registry: dict) -> Optional[str]:
    """The Keras-style string key for ``instance``, or ``None`` if custom."""
    for key, cls in registry.items():
        if type(instance) is cls:
            return key
    return None


class Sequential:
    """A linear stack of layers."""

    def __init__(self, layers: Optional[Sequence[Layer]] = None):
        self.layers: List[Layer] = list(layers) if layers else []
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.loss: Optional[Loss] = None
        self.optimizer: Optional[Optimizer] = None
        self.metric_names: List[str] = []
        self.dtype: np.dtype = np.dtype(np.float64)
        self.backend: Backend = get_backend()
        self._output_units: Optional[int] = None
        # Set when the model came from a saved file that carried no
        # compile metadata, so misuse errors can say *why* it is not
        # compiled ("compile the loaded model before ...").
        self._loaded_uncompiled = False
        # Per-layer timing sink; non-None only inside a profiled fit
        # (REPRO_PROFILE=1).  The last run's numbers stay readable here.
        self._profiler = None
        self.last_profile: Optional[List[dict]] = None

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        if self.input_shape is not None:
            raise TrainingError("cannot add layers after the model is built")
        self.layers.append(layer)
        return self

    # -- construction ------------------------------------------------------

    def build(self, input_shape: Sequence[int], rng=None) -> "Sequential":
        """Allocate all parameters for inputs of ``input_shape`` (sans batch)."""
        if not self.layers:
            raise TrainingError("cannot build an empty model")
        generator = make_rng(rng)
        shape = tuple(int(s) for s in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            layer.set_dtype(self.dtype)
            layer.set_backend(self.backend)
            if not layer.built:
                layer.build(shape, generator)
            shape = layer.output_shape(shape)
        # Cache the output width so target encoding does not re-walk the
        # whole stack's output_shape chain on every fit/evaluate call.
        self._output_units = int(shape[-1])
        # The bottom-most parameterised layer's input gradient is never
        # consumed (nothing below it has parameters to update), so flag
        # it to skip that compute on the training hot path.
        for index, layer in enumerate(self.layers):
            if layer.params:
                layer.skip_input_grad = True
                break
        return self

    def compile(
        self,
        loss="categorical_crossentropy",
        optimizer="adam",
        metrics: Sequence[str] = ("accuracy",),
        dtype=None,
        backend=None,
    ) -> "Sequential":
        """Attach loss, optimizer and metrics (Keras-style).

        ``dtype`` selects the compute precision (``"float32"`` or
        ``"float64"``); ``None`` keeps the current policy (float64 by
        default).  Already-built parameters are cast in place.

        ``backend`` selects the compute backend — a registered name or a
        :class:`~repro.nn.backend.Backend` instance; ``None`` resolves
        the ``REPRO_BACKEND`` environment knob (unset -> ``"numpy"``).
        The backend is a runtime choice, never persisted with the model.
        """
        self.loss = get_loss(loss)
        self.optimizer = get_optimizer(optimizer)
        self.metric_names = list(metrics)
        self._loaded_uncompiled = False
        if dtype is not None:
            self.set_dtype(dtype)
        self.set_backend(backend)
        return self

    def _require_compiled(self, action: str, optimizer: bool = True) -> None:
        """Raise a precise error when ``action`` needs a compiled model."""
        if self.loss is not None and (self.optimizer is not None or not optimizer):
            return
        what = "loaded model" if self._loaded_uncompiled else "model"
        raise TrainingError(f"compile the {what} before {action}")

    def set_backend(self, backend=None) -> "Sequential":
        """Route the whole stack's compute through ``backend``.

        Accepts a registered name or a :class:`~repro.nn.backend.Backend`
        instance; ``None`` re-resolves the ``REPRO_BACKEND`` knob.  The
        loss and every layer (current and future builds) follow along.
        """
        self.backend = get_backend(backend)
        for layer in self.layers:
            layer.set_backend(self.backend)
        if self.loss is not None:
            self.loss.set_backend(self.backend)
        return self

    def set_dtype(self, dtype) -> "Sequential":
        """Switch the model's compute dtype, casting built parameters."""
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise TrainingError(f"model dtype must be a float type, got {dtype}")
        self.dtype = dtype
        for layer in self.layers:
            layer.set_dtype(dtype)
        return self

    def count_params(self) -> int:
        """Total trainable parameters (the paper's Table 3 column)."""
        if self.input_shape is None:
            raise TrainingError("build the model before counting parameters")
        return sum(layer.count_params() for layer in self.layers)

    def summary(self) -> str:
        """A textual per-layer summary, returned (not printed)."""
        if self.input_shape is None:
            raise TrainingError("build the model before summarising it")
        lines = [f"{'Layer':<24}{'Output shape':<20}{'Params':>10}"]
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(f"{layer.name:<24}{str(shape):<20}{layer.count_params():>10}")
        lines.append(f"Total params: {self.count_params()}")
        return "\n".join(lines)

    # -- forward / backward ------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False, rng=None) -> np.ndarray:
        """Run the full stack.

        ``rng`` is routed to stochastic layers (Dropout) so a whole
        training run is reproducible from ``fit``'s single generator.
        """
        out = np.asarray(x, dtype=self.dtype)
        if rng is not None:
            rng = make_rng(rng)
        prof = self._profiler
        for index, layer in enumerate(self.layers):
            if prof is not None:
                tick = time.perf_counter()
            if layer.stochastic:
                out = layer.forward(out, training=training, rng=rng)
            else:
                out = layer.forward(out, training=training)
            if prof is not None:
                prof.record(
                    index, layer.name, "forward", time.perf_counter() - tick
                )
        return out

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        """Backpropagate through the full stack.

        Returns the gradient with respect to the model input, or ``None``
        when the bottom parameterised layer skipped it (nothing below it
        has parameters, so the input gradient is never consumed).
        """
        prof = self._profiler
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            if prof is not None:
                tick = time.perf_counter()
            grad = layer.backward(grad)
            if prof is not None:
                prof.record(
                    index, layer.name, "backward", time.perf_counter() - tick
                )
            if grad is None:
                return None
        return grad

    def _gather(self) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        params: List[np.ndarray] = []
        grads: List[np.ndarray] = []
        for layer in self.layers:
            if layer.trainable:
                params.extend(layer.params)
                grads.extend(layer.grads)
        return params, grads

    def _fused_softmax_cce(self) -> bool:
        """True when the fused softmax+CCE backward rule applies."""
        return (
            bool(self.layers)
            and isinstance(self.layers[-1], Softmax)
            and isinstance(self.loss, CategoricalCrossentropy)
            and not self.loss.from_logits
        )

    def _train_step(
        self, xb: np.ndarray, yb: np.ndarray, fused: bool, rng=None
    ) -> Tuple[float, np.ndarray]:
        """One forward/backward/update step; returns ``(loss, pred)``."""
        pred = self.forward(xb, training=True, rng=rng)
        if fused:
            loss_value = self.loss.value(yb, pred)
            # d(loss)/d(logits) = (p - y) / n: feed it straight into the
            # layer below the softmax, skipping the Jacobian product.
            grad = (pred - yb) / yb.shape[0]
            prof = self._profiler
            for index in range(len(self.layers) - 2, -1, -1):
                layer = self.layers[index]
                if prof is not None:
                    tick = time.perf_counter()
                grad = layer.backward(grad)
                if prof is not None:
                    prof.record(
                        index, layer.name, "backward",
                        time.perf_counter() - tick,
                    )
                if grad is None:
                    break
        else:
            loss_value, grad = self.loss(yb, pred)
            self.backward(grad)
        params, grads = self._gather()
        self.optimizer.update(params, grads)
        return loss_value, pred

    def train_on_batch(self, x: np.ndarray, y: np.ndarray, rng=None) -> float:
        """Run a single gradient step on one batch; returns the loss."""
        self._require_compiled("training")
        x = np.asarray(x, dtype=self.dtype)
        if self.input_shape is None:
            self.build(x.shape[1:], rng)
        y = self._encode_targets(x, y)
        loss_value, _ = self._train_step(x, y, self._fused_softmax_cce(), rng=rng)
        return loss_value

    # -- training ----------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 128,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        validation_split: float = 0.0,
        shuffle: bool = True,
        rng=None,
        callbacks: Sequence[Callback] = (),
        verbose: bool = False,
        data_parallel: Optional[int] = None,
    ) -> History:
        """Train with shuffled mini-batches; returns the epoch history.

        ``y`` may be integer class labels (converted to one-hot against
        the model's output width) or an already-encoded target matrix.

        ``data_parallel=N`` trains each batch as fixed-size gradient
        shards spread over ``N`` replica threads with a deterministic
        tree reduction — the result is bit-identical for every ``N``
        (see :class:`_DataParallel`).  ``None`` resolves the
        ``REPRO_DATA_PARALLEL`` knob; unset means the plain
        single-threaded step, byte-for-byte the historical path.
        """
        self._require_compiled("fitting")
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise TrainingError(f"batch size must be positive, got {batch_size}")
        x = np.asarray(x, dtype=self.dtype)
        if self.input_shape is None:
            self.build(x.shape[1:], rng)
        y = self._encode_targets(x, y)
        if validation_split and validation_data is not None:
            raise TrainingError(
                "pass either validation_split or validation_data, not both"
            )
        generator = make_rng(rng)
        if validation_split:
            if not 0.0 < validation_split < 1.0:
                raise TrainingError(
                    f"validation_split must be in (0, 1), got {validation_split}"
                )
            cut = int(round(x.shape[0] * (1.0 - validation_split)))
            if cut == 0 or cut == x.shape[0]:
                raise TrainingError("validation split leaves an empty partition")
            validation_data = (x[cut:], y[cut:])
            x, y = x[:cut], y[:cut]

        fused = self._fused_softmax_cce()
        if data_parallel is None:
            data_parallel = data_parallel_from_env()
        dp = (
            _DataParallel(self, int(data_parallel))
            if data_parallel is not None
            else None
        )
        history = History()
        n = x.shape[0]
        # Epoch telemetry flows through the structured logger: with
        # ``verbose`` the events are ``info`` (rendered by the default
        # text sink — the old ``print`` is now just a log consumer),
        # otherwise ``debug`` so REPRO_LOG_LEVEL=debug captures the same
        # machine-parsable loss/metric trajectory without the chatter.
        level = "info" if verbose else "debug"
        epoch_seconds = obs_metrics.REGISTRY.histogram(
            "repro_train_epoch_seconds"
        )
        epochs_total = obs_metrics.REGISTRY.counter("repro_train_epochs_total")
        if obs_profile.enabled():
            self._profiler = obs_profile.LayerProfiler()
        try:
            with self.backend.thread_domain("train"), \
                    span("train.fit", epochs=epochs, batch_size=batch_size,
                         samples=n):
                for epoch in range(epochs):
                    start = time.perf_counter()
                    with span("train.epoch", epoch=epoch):
                        order = (
                            generator.permutation(n) if shuffle
                            else np.arange(n)
                        )
                        epoch_loss = 0.0
                        correct = 0.0
                        for begin in range(0, n, batch_size):
                            idx = order[begin:begin + batch_size]
                            xb, yb = x[idx], y[idx]
                            if dp is not None:
                                loss_value, pred = dp.step(
                                    xb, yb, generator
                                )
                            else:
                                loss_value, pred = self._train_step(
                                    xb, yb, fused, rng=generator
                                )
                            epoch_loss += loss_value * len(idx)
                            correct += (
                                pred.argmax(axis=1) == yb.argmax(axis=1)
                            ).sum()
                    values: Dict[str, float] = {
                        "loss": epoch_loss / n,
                        "accuracy": correct / n,
                        "time": time.perf_counter() - start,
                    }
                    if validation_data is not None:
                        val_loss, val_metrics = self.evaluate(
                            validation_data[0],
                            validation_data[1],
                            batch_size=batch_size,
                        )
                        values["val_loss"] = val_loss
                        for key, metric_value in val_metrics.items():
                            values[f"val_{key}"] = metric_value
                    history.append(epoch, values)
                    epochs_total.inc()
                    epoch_seconds.observe(values["time"])
                    _log.log(
                        level, "train.epoch",
                        epoch=epoch + 1, epochs=epochs, **values,
                    )
                    # One liveness tick per epoch on the run event bus
                    # (no-op outside a --run-dir run): the dashboard's
                    # only signal that a long in-flight cell is alive.
                    obs_events.emit(
                        "fit.epoch",
                        epoch=epoch + 1,
                        epochs=epochs,
                        **{key: float(val) for key, val in values.items()},
                    )
                    stop = False
                    for callback in callbacks:
                        callback.on_epoch_end(epoch, values)
                        stop = stop or callback.stop_training
                    if stop:
                        break
        finally:
            if dp is not None:
                dp.close()
            profiler, self._profiler = self._profiler, None
        if profiler is not None:
            self.last_profile = profiler.stats()
            # REPRO_PROFILE is an explicit debugging opt-in, so the
            # table goes straight to stdout regardless of log mode.
            print(profiler.format_table())
        return history

    def _output_width(self) -> int:
        """The model's output width, cached at build time."""
        if self._output_units is None:
            if self.input_shape is None:
                raise TrainingError("build the model before encoding labels")
            shape = self.input_shape
            for layer in self.layers:
                shape = layer.output_shape(shape)
            self._output_units = int(shape[-1])
        return self._output_units

    def _encode_targets(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        if y.ndim == 1:
            y = one_hot(y.astype(np.int64), self._output_width(), dtype=self.dtype)
        if y.shape[0] != x.shape[0]:
            raise TrainingError(
                f"x has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        return y.astype(self.dtype, copy=False)

    # -- inference ---------------------------------------------------------

    def predict(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Forward pass in inference mode, batched to bound memory.

        Chunk outputs are written straight into one preallocated result
        array, so no per-chunk list or final ``np.concatenate`` copy.
        """
        x = np.asarray(x, dtype=self.dtype)
        shape = x.shape[1:]
        for layer in self.layers:
            shape = layer.output_shape(shape)
        out = np.empty((x.shape[0],) + tuple(int(s) for s in shape), dtype=self.dtype)
        for begin in range(0, x.shape[0], batch_size):
            out[begin:begin + batch_size] = self.forward(
                x[begin:begin + batch_size], training=False
            )
        return out

    def predict_proba(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Per-class probability predictions, shape ``(n, classes)``.

        When the model ends in a :class:`Softmax` layer the forward
        output already *is* the probability vector and is returned
        unchanged (bit-identical to :meth:`predict`); otherwise a
        numerically stable softmax is applied to the raw outputs.
        """
        out = self.predict(x, batch_size)
        if out.ndim != 2:
            raise TrainingError(
                "predict_proba needs a (n, classes) output, got shape "
                f"{out.shape}; add a classification head"
            )
        if self.layers and isinstance(self.layers[-1], Softmax):
            return out
        out = out - out.max(axis=1, keepdims=True)
        np.exp(out, out=out)
        out /= out.sum(axis=1, keepdims=True)
        return out

    def predict_classes(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Class predictions as argmax over :meth:`predict_proba`.

        Ties break deterministically to the *lowest* class index
        (numpy's first-occurrence argmax), so identical inputs always
        yield identical labels regardless of batch composition.
        """
        return self.predict_proba(x, batch_size).argmax(axis=1)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 4096
    ) -> Tuple[float, Dict[str, float]]:
        """Return ``(loss, {metric: value})`` on a dataset."""
        self._require_compiled("evaluating", optimizer=False)
        x = np.asarray(x, dtype=self.dtype)
        y = self._encode_targets(x, y)
        pred = self.predict(x, batch_size)
        loss_value, _ = self.loss(y, pred)
        metrics = {
            name: get_metric(name)(y, pred) for name in self.metric_names
        }
        return loss_value, metrics

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist architecture + weights to a ``.npz`` file."""
        if self.input_shape is None:
            raise TrainingError("build the model before saving it")
        config = {
            "input_shape": list(self.input_shape),
            "dtype": self.dtype.name,
            "layers": [
                {"class": layer.name, "config": layer.get_config()}
                for layer in self.layers
            ],
        }
        # Persist the compile state so a loaded model can evaluate/fit
        # without the caller re-deriving loss/optimizer/metric choices.
        # Custom (non-registry) loss or optimizer instances cannot be
        # named, so those models load uncompiled with a clear error.
        loss_name = _registry_name(self.loss, LOSSES) if self.loss else None
        optimizer_name = (
            _registry_name(self.optimizer, OPTIMIZERS) if self.optimizer else None
        )
        if loss_name is not None and optimizer_name is not None:
            config["compile"] = {
                "loss": loss_name,
                "optimizer": optimizer_name,
                "metrics": list(self.metric_names),
                "dtype": self.dtype.name,
            }
        arrays = {"config": np.frombuffer(json.dumps(config).encode(), dtype=np.uint8)}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.params):
                arrays[f"layer{i}_param{j}"] = param
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "Sequential":
        """Rebuild a model saved with :meth:`save`."""
        with np.load(path) as data:
            config = json.loads(bytes(data["config"]).decode())
            model = cls(
                [
                    _layer_class(entry["class"])(**entry["config"])
                    for entry in config["layers"]
                ]
            )
            model.dtype = np.dtype(config.get("dtype", "float64"))
            model.build(config["input_shape"], rng=0)
            for i, layer in enumerate(model.layers):
                for j in range(len(layer.params)):
                    layer.params[j][...] = data[f"layer{i}_param{j}"]
        compile_config = config.get("compile")
        if compile_config is not None:
            model.compile(
                loss=compile_config["loss"],
                optimizer=compile_config["optimizer"],
                metrics=tuple(compile_config.get("metrics", ("accuracy",))),
            )
        else:
            model._loaded_uncompiled = True
        return model


def load_model(path: str) -> Sequential:
    """Convenience alias for :meth:`Sequential.load`."""
    return Sequential.load(path)
