"""Serving telemetry: latency percentiles, throughput, batching shape.

One :class:`ServeMetrics` instance is shared by the micro-batching
engine and the HTTP front-end.  It keeps bounded sliding windows of
per-request and per-batch latencies (oldest samples are dropped once
``window`` is full, so a long-lived server's snapshot always reflects
recent behaviour), plus cumulative counters and a power-of-two batch
size histogram.  Everything is guarded by one lock; recording is a
couple of appends, so the hot path stays cheap.

``snapshot()`` renders a JSON-ready dict — the same structure served by
``GET /v1/metrics`` and embedded in ``BENCH_serve.json``.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.errors import ServeError


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ServeError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ServeError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _latency_summary(window: Sequence[float]) -> Optional[Dict[str, float]]:
    if not window:
        return None
    values = list(window)
    return {
        "mean_ms": 1e3 * sum(values) / len(values),
        "p50_ms": 1e3 * percentile(values, 50.0),
        "p95_ms": 1e3 * percentile(values, 95.0),
        "p99_ms": 1e3 * percentile(values, 99.0),
        "max_ms": 1e3 * max(values),
    }


class ServeMetrics:
    """Thread-safe request/batch/queue telemetry for the serving stack."""

    def __init__(self, window: int = 65536):
        if window <= 0:
            raise ServeError(f"metrics window must be positive, got {window}")
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._request_latencies: deque = deque(maxlen=window)
        self._batch_latencies: deque = deque(maxlen=window)
        self._requests = 0
        self._rows = 0
        self._batches = 0
        self._timeouts = 0
        self._rejected = 0
        self._batch_rows = 0
        self._batch_max = 0
        self._batch_histogram: Dict[int, int] = {}
        self._queue_depth_sum = 0
        self._queue_depth_max = 0

    # -- recording ---------------------------------------------------------

    def record_request(self, latency_s: float, rows: int = 1) -> None:
        """One answered request: end-to-end latency and its row count."""
        with self._lock:
            self._requests += 1
            self._rows += int(rows)
            self._request_latencies.append(float(latency_s))

    def record_batch(self, size: int, queue_depth: int, latency_s: float) -> None:
        """One coalesced inference batch run by the engine."""
        size = int(size)
        bucket = 1 << max(0, (size - 1)).bit_length()  # power-of-two ceiling
        with self._lock:
            self._batches += 1
            self._batch_rows += size
            self._batch_max = max(self._batch_max, size)
            self._batch_histogram[bucket] = self._batch_histogram.get(bucket, 0) + 1
            self._batch_latencies.append(float(latency_s))
            self._queue_depth_sum += int(queue_depth)
            self._queue_depth_max = max(self._queue_depth_max, int(queue_depth))

    def record_timeout(self) -> None:
        """A request whose deadline expired before it could be answered."""
        with self._lock:
            self._timeouts += 1

    def record_rejection(self) -> None:
        """A request shed by queue-depth backpressure."""
        with self._lock:
            self._rejected += 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of everything recorded so far."""
        with self._lock:
            elapsed = max(time.monotonic() - self._started, 1e-9)
            return {
                "uptime_s": elapsed,
                "requests": {
                    "count": self._requests,
                    "rows": self._rows,
                    "timeouts": self._timeouts,
                    "rejected": self._rejected,
                    "throughput_rps": self._requests / elapsed,
                    "row_throughput_rps": self._rows / elapsed,
                    "latency": _latency_summary(self._request_latencies),
                },
                "batches": {
                    "count": self._batches,
                    "mean_size": (
                        self._batch_rows / self._batches if self._batches else 0.0
                    ),
                    "max_size": self._batch_max,
                    "size_histogram": {
                        str(bucket): count
                        for bucket, count in sorted(self._batch_histogram.items())
                    },
                    "latency": _latency_summary(self._batch_latencies),
                },
                "queue": {
                    "mean_depth": (
                        self._queue_depth_sum / self._batches if self._batches else 0.0
                    ),
                    "max_depth": self._queue_depth_max,
                },
            }

    def request_latencies(self) -> List[float]:
        """The retained per-request latency window (seconds), oldest first."""
        with self._lock:
            return list(self._request_latencies)
