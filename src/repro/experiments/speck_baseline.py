"""§2.3 background: Gohr-style SPECK distinguisher + exact all-in-one.

Two experiments:

* :func:`run_speck_baseline` — the real-vs-random neural distinguisher
  on round-reduced SPECK-32/64 with Gohr's input difference
  ``0x0040/0000``, showing the accuracy decay with rounds.
* :func:`run_toyspeck_allinone` — on ToySpeck the exact all-in-one
  (Markov) distribution is computable, so the ML accuracy can be placed
  against its Bayes-optimal ceiling — the comparison Gohr could only
  make with 34 GB of precomputation on SPECK-32/64.

Both run their per-round cells as payload-complete grid jobs (seed
material derived up front in serial order), so they parallelise across
``workers`` processes and resume through :mod:`repro.jobs` with rows
identical to the historical serial loops.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import SpeckRealOrRandomScenario, ToySpeckScenario
from repro.diffcrypt.allinone import toyspeck_allinone
from repro.errors import DistinguisherAborted
from repro.experiments.config import default_scale, get_workers
from repro.jobs import bind_run, run_cells
from repro.nn.architectures import build_mlp
from repro.obs.trace import span
from repro.utils.rng import derive_rng, make_rng


def _run_speck_cell(payload: Dict) -> Dict:
    """Train and evaluate one SPECK round count (payload-complete)."""
    r = payload["rounds"]
    with span("speck-baseline.cell", rounds=r):
        scenario = SpeckRealOrRandomScenario(rounds=r, delta=payload["delta"])
        x, y = scenario.generate_dataset(
            max(1, payload["num_samples"] // 2), rng=payload["data_rng"]
        )
        model = build_mlp([64, 256, 256], "relu")
        model.build((x.shape[1],), rng=payload["weights_rng"])
        model.compile()
        cut = int(round(x.shape[0] * 0.9))
        model.fit(
            x[:cut],
            y[:cut],
            epochs=payload["epochs"],
            batch_size=256,
            rng=payload["batches_rng"],
        )
        _, metrics = model.evaluate(x[cut:], y[cut:])
        return {
            "rounds": r,
            "measured": metrics["accuracy"],
            "num_samples": x.shape[0],
        }


def run_speck_baseline(
    rounds: Sequence[int] = (3, 4, 5, 6),
    num_samples: Optional[int] = None,
    epochs: int = 5,
    delta: int = 0x0040_0000,
    rng=None,
    workers: Optional[int] = None,
    queue_dir=None,
) -> Dict:
    """Train real-vs-random MLP distinguishers on round-reduced SPECK.

    Each round count is an independent grid cell with pre-derived seed
    material, so rows are identical for every ``workers`` count and to
    the historical serial loop.  ``queue_dir`` makes the grid resumable
    (``rng`` must then be an integer seed or ``None``).
    """
    scale = default_scale()
    n_samples = num_samples if num_samples is not None else scale.offline_samples
    workers = workers if workers is not None else get_workers()
    if queue_dir is not None:
        rng = bind_run(
            queue_dir,
            "speck-baseline",
            {
                "rounds": list(rounds),
                "num_samples": num_samples,
                "epochs": epochs,
                "delta": delta,
            },
            rng,
        )
    generator = make_rng(rng)
    payloads = []
    specs = []
    for r in rounds:
        payloads.append(
            {
                "rounds": r,
                "delta": delta,
                "num_samples": n_samples,
                "epochs": epochs,
                "data_rng": derive_rng(generator, "data", r),
                "weights_rng": derive_rng(generator, "weights", r),
                "batches_rng": derive_rng(generator, "batches", r),
            }
        )
        specs.append(
            {
                "experiment": "speck-baseline",
                "rounds": r,
                "delta": delta,
                "num_samples": n_samples,
                "epochs": epochs,
                "seed": rng if queue_dir is not None else None,
            }
        )
    rows = run_cells(
        _run_speck_cell, payloads, specs=specs, workers=workers,
        label="speck-baseline", queue_dir=queue_dir,
    )
    return {"experiment": "speck-baseline", "delta": delta, "rows": rows}


def _run_toyspeck_cell(payload: Dict) -> Dict:
    """One ToySpeck round count: exact all-in-one + ML accuracy."""
    r = payload["rounds"]
    deltas = list(payload["deltas"])
    with span("toyspeck-allinone.cell", rounds=r):
        exact = toyspeck_allinone(deltas, r, max_active=payload["max_active"])
        scenario = ToySpeckScenario(rounds=r, deltas=deltas)
        distinguisher = MLDistinguisher(
            scenario,
            model=build_mlp([64, 256], "relu", num_classes=len(deltas)),
            epochs=payload["epochs"],
            batch_size=256,
            rng=payload["cell_rng"],
        )
        row = {
            "rounds": r,
            "bayes_accuracy": exact.bayes_accuracy(),
            "advantage_vs_random": exact.advantage_vs_random(),
        }
        try:
            report = distinguisher.train(num_samples=payload["num_samples"])
            row["measured"] = report.validation_accuracy
            row["aborted"] = False
        except DistinguisherAborted:
            row["measured"] = 1.0 / len(deltas)
            row["aborted"] = True
        return row


def run_toyspeck_allinone(
    rounds: Sequence[int] = (2, 3, 4),
    deltas: Sequence[int] = (0x0040, 0x2000),
    num_samples: Optional[int] = None,
    epochs: int = 8,
    max_active: int = 4096,
    rng=None,
    workers: Optional[int] = None,
    queue_dir=None,
) -> Dict:
    """ML accuracy vs the exact all-in-one Bayes ceiling on ToySpeck.

    Per-round cells run as a grid (see :func:`run_speck_baseline` for
    the determinism and resume contract).
    """
    scale = default_scale()
    n_samples = num_samples if num_samples is not None else scale.offline_samples
    workers = workers if workers is not None else get_workers()
    if queue_dir is not None:
        rng = bind_run(
            queue_dir,
            "toyspeck-allinone",
            {
                "rounds": list(rounds),
                "deltas": list(deltas),
                "num_samples": num_samples,
                "epochs": epochs,
                "max_active": max_active,
            },
            rng,
        )
    generator = make_rng(rng)
    payloads = []
    specs = []
    for r in rounds:
        payloads.append(
            {
                "rounds": r,
                "deltas": list(deltas),
                "num_samples": n_samples,
                "epochs": epochs,
                "max_active": max_active,
                "cell_rng": derive_rng(generator, "toyspeck", r),
            }
        )
        specs.append(
            {
                "experiment": "toyspeck-allinone",
                "rounds": r,
                "deltas": list(deltas),
                "num_samples": n_samples,
                "epochs": epochs,
                "max_active": max_active,
                "seed": rng if queue_dir is not None else None,
            }
        )
    rows = run_cells(
        _run_toyspeck_cell, payloads, specs=specs, workers=workers,
        label="toyspeck-allinone", queue_dir=queue_dir,
    )
    return {
        "experiment": "toyspeck-allinone",
        "deltas": list(deltas),
        "rows": rows,
    }
