"""Reproducible random number generation.

Every stochastic component in the library (sample generation, weight
initialisation, mini-batch shuffling, Monte-Carlo estimators) draws from
a :class:`numpy.random.Generator` passed in explicitly.  ``make_rng``
normalises the accepted spellings, and ``derive_rng`` splits a parent
generator into independent child streams so that, e.g., the data
pipeline and the network initialiser of one experiment do not share a
stream (which would make results depend on evaluation order).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any accepted seed form.

    ``None`` gives OS entropy, an ``int`` gives a deterministic stream,
    and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def derive_rng(parent: RngLike, *labels: Union[int, str]) -> np.random.Generator:
    """Derive an independent child generator keyed by ``labels``.

    The same ``(parent seed, labels)`` pair always yields the same
    stream; different labels yield statistically independent streams.
    """
    if isinstance(parent, np.random.Generator):
        # Spawn from the generator's own entropy so repeated calls differ.
        seeds = parent.integers(0, 2**63 - 1, size=4)
        entropy = [int(s) for s in seeds]
    elif isinstance(parent, np.random.SeedSequence):
        entropy = list(parent.entropy if parent.entropy is not None else [0])
    elif parent is None:
        entropy = [int(np.random.SeedSequence().entropy)]
    else:
        entropy = [int(parent)]
    label_ints = [
        _label_to_int(label) for label in labels
    ]
    seq = np.random.SeedSequence(entropy + label_ints)
    return np.random.Generator(np.random.PCG64(seq))


def _label_to_int(label: Union[int, str]) -> int:
    if isinstance(label, int):
        return label & (2**63 - 1)
    acc = 0
    for ch in str(label).encode("utf-8"):
        acc = (acc * 257 + ch) % (2**61 - 1)
    return acc


_WORD_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


def random_words(rng: np.random.Generator, shape, width: int = 32) -> np.ndarray:
    """Draw uniform ``width``-bit words directly in their native dtype.

    Replaces the ``integers(..., dtype=uint64).astype(uint32)`` idiom,
    which samples twice the entropy it keeps and allocates a second
    array for the downcast.
    """
    try:
        dtype = _WORD_DTYPES[int(width)]
    except (KeyError, ValueError):
        known = ", ".join(str(w) for w in sorted(_WORD_DTYPES))
        raise ValueError(f"unsupported word width {width!r}; known: {known}") from None
    return rng.integers(0, 1 << int(width), size=shape, dtype=dtype)


def random_bytes(rng: np.random.Generator, n: int) -> bytes:
    """Draw ``n`` uniformly random bytes from ``rng``."""
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


def spawn_seed(rng: Optional[np.random.Generator] = None) -> int:
    """Draw a fresh 63-bit seed, e.g. to log alongside an experiment."""
    gen = make_rng(rng)
    return int(gen.integers(0, 2**63 - 1))
