"""Tests for the distinguisher statistics (§3.1 formulas)."""

import numpy as np
import pytest

from repro.core.statistics import (
    accuracy_confidence_interval,
    advantage,
    binomial_pvalue,
    decision_threshold,
    expected_random_accuracy,
    required_online_samples,
)
from repro.errors import DistinguisherError


class TestExpectedRandomAccuracy:
    @pytest.mark.parametrize("t", [2, 3, 4, 8, 32])
    def test_formula_collapses_to_1_over_t(self, t):
        """The paper's E/t formula equals 1/t (E = 1 for a uniform
        guesser over t trials of probability 1/t... the expectation of
        correct classifications out of t is 1)."""
        assert expected_random_accuracy(t) == pytest.approx(1.0 / t)

    def test_paper_examples(self):
        """§3.1: 'if t = 2, expected training accuracy is 0.5; if
        t = 32, 0.03125'."""
        assert expected_random_accuracy(2) == pytest.approx(0.5)
        assert expected_random_accuracy(32) == pytest.approx(0.03125)

    def test_matches_simulation(self, rng):
        t = 4
        trials = 20000
        guesses = rng.integers(0, t, size=(trials, t))
        truth = np.arange(t)
        accuracy = (guesses == truth).mean()
        assert abs(accuracy - expected_random_accuracy(t)) < 0.01

    def test_invalid_t(self):
        with pytest.raises(DistinguisherError):
            expected_random_accuracy(1)


class TestAdvantage:
    def test_baseline_zero(self):
        assert advantage(0.5, 2) == 0.0

    def test_positive(self):
        assert advantage(0.52, 2) == pytest.approx(0.02)

    def test_invalid(self):
        with pytest.raises(DistinguisherError):
            advantage(1.5, 2)


class TestBinomialPvalue:
    def test_extreme_counts(self):
        assert binomial_pvalue(1000, 1000, 0.5) < 1e-100
        assert binomial_pvalue(0, 1000, 0.5) == pytest.approx(1.0)

    def test_exact_small_case(self):
        # P(X >= 2) for Bin(2, 0.5) = 0.25.
        assert binomial_pvalue(2, 2, 0.5) == pytest.approx(0.25)

    def test_monotone_in_correct(self):
        p_values = [binomial_pvalue(k, 100, 0.5) for k in (50, 60, 70)]
        assert p_values == sorted(p_values, reverse=True)

    def test_validation(self):
        with pytest.raises(DistinguisherError):
            binomial_pvalue(5, 0, 0.5)
        with pytest.raises(DistinguisherError):
            binomial_pvalue(5, 4, 0.5)
        with pytest.raises(DistinguisherError):
            binomial_pvalue(1, 2, 1.0)


class TestDecisionThreshold:
    def test_midpoint(self):
        assert decision_threshold(0.6, 2) == pytest.approx(0.55)

    def test_rejects_at_baseline(self):
        with pytest.raises(DistinguisherError):
            decision_threshold(0.5, 2)


class TestRequiredOnlineSamples:
    def test_stronger_distinguisher_needs_fewer_samples(self):
        strong = required_online_samples(0.9, 2)
        weak = required_online_samples(0.52, 2)
        assert strong < weak

    def test_paper_regime(self):
        """An accuracy like the paper's 8-round 0.5219 needs on the
        order of 2^13..2^15 online samples — consistent with the quoted
        2^14.3."""
        n = required_online_samples(0.5219, 2, error_probability=0.001)
        assert 2**12 < n < 2**16

    def test_error_probability_monotone(self):
        loose = required_online_samples(0.55, 2, error_probability=0.05)
        tight = required_online_samples(0.55, 2, error_probability=0.001)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(DistinguisherError):
            required_online_samples(0.4, 2)
        with pytest.raises(DistinguisherError):
            required_online_samples(0.6, 2, error_probability=0.7)


class TestConfidenceInterval:
    def test_contains_point_estimate(self):
        low, high = accuracy_confidence_interval(60, 100)
        assert low < 0.6 < high

    def test_narrows_with_samples(self):
        low1, high1 = accuracy_confidence_interval(60, 100)
        low2, high2 = accuracy_confidence_interval(600, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_bounds_clamped(self):
        low, high = accuracy_confidence_interval(0, 10)
        assert low == pytest.approx(0.0, abs=1e-12)
        low, high = accuracy_confidence_interval(10, 10)
        assert high == pytest.approx(1.0, abs=1e-12)
        assert 0.0 <= low <= high <= 1.0

    def test_validation(self):
        with pytest.raises(DistinguisherError):
            accuracy_confidence_interval(1, 0)
        with pytest.raises(DistinguisherError):
            accuracy_confidence_interval(1, 2, confidence=1.5)
