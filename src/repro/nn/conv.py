"""1-D convolution and pooling layers (the paper's CNN comparison points).

Inputs are ``(batch, steps, channels)``.  The convolution is implemented
as im2col: a stride-tricks sliding-window view of the (padded) input is
copied once into a persistent ``(batch*out_steps, kernel*channels)``
scratch buffer, after which the forward pass, the kernel gradient and
the column gradient are each one large matmul.  The column buffer built
in the forward pass is reused by the backward pass, and all scratch
(including the padded input) persists across steps, so a steady-state
train step allocates only its output arrays.

The single-matmul reduction sums ``kernel*channels`` terms in one sweep
where the previous offset-sum kernel added per-offset partial products,
so float64 results match the reference formulation to float tolerance
rather than bit-exactly (``tests/test_nn_seq_kernels.py`` pins the
equivalence).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import LayerError
from repro.nn.initializers import get_initializer
from repro.nn.layers import Layer, scratch_buffer


class Conv1D(Layer):
    """1-D convolution, stride 1, ``valid`` or ``same`` padding."""

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        padding: str = "valid",
        use_bias: bool = True,
        kernel_initializer: str = "glorot_uniform",
    ):
        super().__init__()
        if filters <= 0 or kernel_size <= 0:
            raise LayerError("filters and kernel_size must be positive")
        if padding not in ("valid", "same"):
            raise LayerError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.padding = padding
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer
        self._cache: Optional[Tuple] = None
        self._scratch: Dict[str, np.ndarray] = {}

    def _pad_amounts(self) -> Tuple[int, int]:
        if self.padding == "valid":
            return 0, 0
        total = self.kernel_size - 1
        return total // 2, total - total // 2

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise LayerError(
                f"Conv1D expects (steps, channels) inputs, got {input_shape}"
            )
        steps, channels = input_shape
        if self.padding == "valid" and steps < self.kernel_size:
            raise LayerError(
                f"kernel size {self.kernel_size} exceeds {steps} input steps"
            )
        init = get_initializer(self.kernel_initializer)
        kernel = init((self.kernel_size, channels, self.filters), rng).astype(
            self.dtype, copy=False
        )
        self.params = [kernel]
        if self.use_bias:
            self.params.append(np.zeros(self.filters, dtype=self.dtype))
        self.grads = [np.zeros_like(p) for p in self.params]
        self.built = True

    def _im2col(self, x):
        """Copy sliding windows of ``x`` into the persistent column buffer.

        Returns ``(cols, padded_steps)`` where ``cols`` has shape
        ``(batch * out_steps, kernel_size * channels)`` laid out to match
        ``kernel.reshape(kernel_size * channels, filters)``.
        """
        left, right = self._pad_amounts()
        n, steps, channels = x.shape
        if left or right:
            padded = scratch_buffer(
                self._scratch, "padded", (n, steps + left + right, channels), x.dtype
            )
            padded[:, :left, :] = 0.0
            padded[:, left + steps:, :] = 0.0
            padded[:, left:left + steps, :] = x
            x = padded
        k = self.kernel_size
        out_steps = x.shape[1] - k + 1
        cols = scratch_buffer(
            self._scratch, "cols", (n * out_steps, k * channels), x.dtype
        )
        # sliding_window_view yields (n, out_steps, channels, k); transpose
        # to offset-major / channel-minor to match the kernel layout.
        windows = sliding_window_view(x, k, axis=1)
        np.copyto(
            cols.reshape(n, out_steps, k, channels),
            windows.transpose(0, 1, 3, 2),
        )
        return cols, x.shape[1]

    def forward(self, x, training=False):
        kernel = self.params[0]
        n, steps, channels = x.shape
        k = self.kernel_size
        cols, padded_steps = self._im2col(x)
        out_steps = padded_steps - k + 1
        out = np.empty((n, out_steps, self.filters), dtype=x.dtype)
        self.backend.matmul(
            cols,
            kernel.reshape(k * channels, self.filters),
            out=out.reshape(n * out_steps, self.filters),
        )
        if self.use_bias:
            out += self.params[1]
        self._cache = (x.shape, cols, out_steps) if training else None
        return out

    def backward(self, grad):
        if self._cache is None:
            raise LayerError("backward called without a training forward pass")
        (n, steps, channels), cols, out_steps = self._cache
        kernel = self.params[0]
        k = self.kernel_size
        grad2 = np.ascontiguousarray(grad).reshape(n * out_steps, self.filters)
        self.backend.matmul(
            cols.T, grad2, out=self.grads[0].reshape(k * channels, self.filters)
        )
        if self.use_bias:
            self.backend.colsum(grad2, out=self.grads[1])
        if self.skip_input_grad:
            return None
        col_grad = scratch_buffer(
            self._scratch, "col_grad", (n * out_steps, k * channels), grad2.dtype
        )
        self.backend.matmul(
            grad2, kernel.reshape(k * channels, self.filters).T, out=col_grad
        )
        left, right = self._pad_amounts()
        x_grad = np.empty((n, steps + left + right, channels), dtype=grad2.dtype)
        col_grad4 = col_grad.reshape(n, out_steps, k, channels)
        # Offset 0 covers positions [0, out_steps); assign it outright and
        # zero only the short uncovered tail instead of memsetting the
        # whole buffer, then accumulate the remaining offsets.
        x_grad[:, :out_steps, :] = col_grad4[:, :, 0, :]
        x_grad[:, out_steps:, :] = 0.0
        for offset in range(1, k):
            x_grad[:, offset:offset + out_steps, :] += col_grad4[:, :, offset, :]
        if left or right:
            return x_grad[:, left:x_grad.shape[1] - right, :]
        return x_grad

    def output_shape(self, input_shape):
        steps, _channels = input_shape
        if self.padding == "same":
            return (steps, self.filters)
        return (steps - self.kernel_size + 1, self.filters)

    def get_config(self):
        return {
            "filters": self.filters,
            "kernel_size": self.kernel_size,
            "padding": self.padding,
            "use_bias": self.use_bias,
            "kernel_initializer": self.kernel_initializer,
        }


class MaxPool1D(Layer):
    """Max pooling with non-overlapping windows (stride == pool size)."""

    def __init__(self, pool_size: int = 2):
        super().__init__()
        if pool_size <= 0:
            raise LayerError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self._cache: Optional[Tuple] = None

    def forward(self, x, training=False):
        n, steps, channels = x.shape
        usable = (steps // self.pool_size) * self.pool_size
        trimmed = x[:, :usable, :]
        windows = trimmed.reshape(
            n, usable // self.pool_size, self.pool_size, channels
        )
        out = windows.max(axis=2)
        if training:
            argmax = windows.argmax(axis=2)
            self._cache = (x.shape, usable, argmax)
        else:
            self._cache = None
        return out

    def backward(self, grad):
        if self._cache is None:
            raise LayerError("backward called without a training forward pass")
        shape, usable, argmax = self._cache
        n, steps, channels = shape
        pooled = usable // self.pool_size
        x_grad = np.zeros(shape, dtype=grad.dtype)
        windows = np.zeros((n, pooled, self.pool_size, channels), dtype=grad.dtype)
        n_idx, p_idx, c_idx = np.meshgrid(
            np.arange(n), np.arange(pooled), np.arange(channels), indexing="ij"
        )
        windows[n_idx, p_idx, argmax, c_idx] = grad
        x_grad[:, :usable, :] = windows.reshape(n, usable, channels)
        return x_grad

    def output_shape(self, input_shape):
        steps, channels = input_shape
        return (steps // self.pool_size, channels)

    def get_config(self):
        return {"pool_size": self.pool_size}


class GlobalAveragePool1D(Layer):
    """Average over the step axis, producing ``(batch, channels)``."""

    def __init__(self):
        super().__init__()
        self._steps: Optional[int] = None

    def forward(self, x, training=False):
        self._steps = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad):
        if self._steps is None:
            raise LayerError("backward called without a forward pass")
        # Broadcast a read-only (batch, 1, channels) view over the step
        # axis instead of materialising the repeat; downstream consumers
        # only read it (or copy it to contiguous storage themselves).
        scaled = grad / self._steps
        return np.broadcast_to(
            scaled[:, np.newaxis, :], (grad.shape[0], self._steps, grad.shape[1])
        )

    def output_shape(self, input_shape):
        _steps, channels = input_shape
        return (channels,)
