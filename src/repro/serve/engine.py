"""Micro-batching inference engine: one worker, fused batched predicts.

Serving traffic arrives as many small feature batches; numpy inference
is dramatically faster on one large matmul than on many small ones (the
PR 1–2 float32 kernels are GEMM-bound).  The engine therefore runs a
single worker thread that drains a bounded request queue, coalesces
pending requests until ``max_batch`` rows are gathered or ``max_wait``
elapses since the first one, runs **one** fused
:meth:`~repro.nn.model.Sequential.predict_proba` over the concatenated
rows, and fans the probability slices back through per-request futures.

Flow control:

* **Backpressure** — the queue holds at most ``max_queue`` requests;
  :meth:`submit` raises :class:`~repro.errors.EngineOverloaded` instead
  of queueing unboundedly (the HTTP layer maps this to 503).
* **Per-request timeouts** — a request carries an optional deadline;
  if the worker drains it after the deadline it resolves the future
  with :class:`~repro.errors.ServeTimeout` rather than wasting compute
  on an answer nobody is waiting for.

Knobs (constructor arguments, defaulting from the environment):
``REPRO_SERVE_MAX_BATCH`` (default 256 rows) and
``REPRO_SERVE_MAX_WAIT_MS`` (default 2.0 ms).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import EngineOverloaded, ServeError, ServeTimeout
from repro.nn.backend import blas
from repro.nn.model import Sequential
from repro.obs.trace import span
from repro.serve.metrics import ServeMetrics

#: Environment knobs (see EXPERIMENTS.md, "Serving knobs").
MAX_BATCH_ENV_VAR = "REPRO_SERVE_MAX_BATCH"
MAX_WAIT_MS_ENV_VAR = "REPRO_SERVE_MAX_WAIT_MS"

DEFAULT_MAX_BATCH = 256
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_MAX_QUEUE = 1024

_STOP = object()


def _env_positive(name: str, default, cast):
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = cast(raw)
    except ValueError:
        raise ServeError(f"{name} must be a {cast.__name__}, got {raw!r}") from None
    if value <= 0:
        raise ServeError(f"{name} must be positive, got {value}")
    return value


@dataclass
class _Request:
    features: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued: float = field(default_factory=time.monotonic)
    deadline: Optional[float] = None

    @property
    def rows(self) -> int:
        return self.features.shape[0]


class MicroBatchEngine:
    """Coalesces concurrent classify requests into fused model predicts."""

    def __init__(
        self,
        model: Sequential,
        max_batch: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        metrics: Optional[ServeMetrics] = None,
        autostart: bool = True,
    ):
        if model.input_shape is None:
            raise ServeError("build the model before serving it")
        self.model = model
        self.max_batch = int(
            max_batch
            if max_batch is not None
            else _env_positive(MAX_BATCH_ENV_VAR, DEFAULT_MAX_BATCH, int)
        )
        wait_ms = float(
            max_wait_ms
            if max_wait_ms is not None
            else _env_positive(MAX_WAIT_MS_ENV_VAR, DEFAULT_MAX_WAIT_MS, float)
        )
        if self.max_batch <= 0:
            raise ServeError(f"max_batch must be positive, got {self.max_batch}")
        if wait_ms < 0:
            raise ServeError(f"max_wait_ms must be >= 0, got {wait_ms}")
        if max_queue <= 0:
            raise ServeError(f"max_queue must be positive, got {max_queue}")
        self.max_wait_s = wait_ms / 1e3
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._queue: "queue.Queue" = queue.Queue(maxsize=int(max_queue))
        self._worker: Optional[threading.Thread] = None
        self._stopped = False
        self._lock = threading.Lock()
        if autostart:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "MicroBatchEngine":
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._stopped:
                raise ServeError("engine has been stopped; create a new one")
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._run, name="repro-serve-engine", daemon=True
                )
                self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) answer queued work first.

        Without ``drain``, still-queued requests fail with
        :class:`ServeError` rather than hanging their futures forever.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            worker = self._worker
        if worker is None or not drain:
            self._fail_pending("engine stopped without draining")
        if worker is not None:
            self._queue.put(_STOP)
            worker.join()

    def _fail_pending(self, reason: str) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _STOP and item.future.set_running_or_notify_cancel():
                item.future.set_exception(ServeError(reason))

    def __enter__(self) -> "MicroBatchEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission --------------------------------------------------------

    def submit(
        self, features: np.ndarray, timeout_s: Optional[float] = None
    ) -> Future:
        """Enqueue a ``(rows, features)`` batch; resolves to probabilities.

        The returned :class:`~concurrent.futures.Future` yields the
        ``(rows, classes)`` probability array.  ``timeout_s`` bounds how
        long the request may sit in the queue before the worker discards
        it with :class:`ServeTimeout`.
        """
        if self._stopped:
            raise ServeError("engine is stopped")
        features = np.ascontiguousarray(features, dtype=self.model.dtype)
        if features.ndim == 1:
            features = features[None, :]
        expected = tuple(self.model.input_shape or ())
        if features.shape[1:] != expected:
            raise ServeError(
                f"request features have shape {features.shape[1:]}, model "
                f"expects {expected}"
            )
        if features.shape[0] == 0:
            raise ServeError("request must contain at least one row")
        request = _Request(features=features)
        if timeout_s is not None:
            if timeout_s <= 0:
                raise ServeError(f"timeout_s must be positive, got {timeout_s}")
            request.deadline = request.enqueued + timeout_s
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self.metrics.record_rejection()
            raise EngineOverloaded(
                f"request queue is full ({self._queue.maxsize} pending); "
                "shed load or retry with backoff"
            ) from None
        return request.future

    def classify(
        self, features: np.ndarray, timeout_s: Optional[float] = None
    ) -> np.ndarray:
        """Synchronous :meth:`submit`: block until the batch is answered."""
        return self.submit(features, timeout_s=timeout_s).result()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (approximate, lock-free read)."""
        return self._queue.qsize()

    # -- worker ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            rows = item.rows
            deadline = time.monotonic() + self.max_wait_s
            stop_after = False
            # Coalesce until the row budget is met or the wait expires.
            # The first request is always taken whole, so one oversized
            # request can exceed max_batch by itself but never starves.
            while rows < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                else:
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if nxt is _STOP:
                    stop_after = True
                    break
                batch.append(nxt)
                rows += nxt.rows
            # Sample the queue depth the moment the batch is assembled,
            # under the engine lock, so the recorded depth is the
            # backlog this batch actually left behind — not whatever
            # the queue happens to hold after the predict finishes.
            with self._lock:
                depth = self._queue.qsize()
            self._run_batch(batch, depth)
            if stop_after:
                return

    def _run_batch(self, batch: List[_Request], queue_depth: int) -> None:
        now = time.monotonic()
        live: List[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self.metrics.record_timeout()
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(
                        ServeTimeout(
                            f"request waited {now - request.enqueued:.3f}s, "
                            "past its deadline"
                        )
                    )
                continue
            if request.future.set_running_or_notify_cancel():
                live.append(request)
        if not live:
            return
        features = (
            live[0].features
            if len(live) == 1
            else np.concatenate([request.features for request in live], axis=0)
        )
        start = time.perf_counter()
        try:
            # One fused predict over the whole coalesced batch — the
            # per-row results are exactly those of an unbatched
            # ``predict_proba`` call on the same concatenated rows.
            # BLAS threads are pinned to the serve domain for the call
            # (REPRO_BLAS_THREADS_SERVE): serving batches are small, so
            # thread fan-out overhead usually exceeds the GEMM win.
            with blas.thread_domain("serve"), \
                    span("serve.batch", rows=int(features.shape[0]),
                         requests=len(live)):
                probabilities = self.model.predict_proba(
                    features, batch_size=max(features.shape[0], 1)
                )
        except BaseException as exc:  # propagate to every waiter
            for request in live:
                request.future.set_exception(exc)
            return
        latency = time.perf_counter() - start
        self.metrics.record_batch(features.shape[0], queue_depth, latency)
        offset = 0
        done = time.monotonic()
        for request in live:
            result = probabilities[offset:offset + request.rows]
            offset += request.rows
            self.metrics.record_request(done - request.enqueued, request.rows)
            request.future.set_result(np.array(result, copy=True))
