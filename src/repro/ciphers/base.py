"""Common interfaces for permutations and block ciphers.

The distinguisher framework in :mod:`repro.core` only needs two things
from a primitive: a way to apply it to a *batch* of states, and metadata
about its shape (word width, state size).  These base classes pin down
that contract so scenarios can be written once and instantiated for any
registered primitive.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Type

import numpy as np

from repro.errors import CipherError, ShapeError


class Permutation(abc.ABC):
    """An unkeyed permutation over a fixed-size word-vector state.

    Subclasses define ``state_words`` / ``word_width`` and implement the
    batched :meth:`__call__`.  ``rounds`` selects a round-reduced
    variant; the interpretation of the round window (e.g. Gimli counts
    rounds downward from 24) is documented per subclass.
    """

    #: number of words in the state
    state_words: int
    #: bits per word
    word_width: int

    def __init__(self, rounds: int):
        if rounds < 0:
            raise CipherError(f"round count must be non-negative, got {rounds}")
        self.rounds = rounds

    @property
    def state_bits(self) -> int:
        """Total state size in bits."""
        return self.state_words * self.word_width

    @abc.abstractmethod
    def __call__(self, states: np.ndarray) -> np.ndarray:
        """Apply the permutation to a batch of states.

        ``states`` has shape ``(n, state_words)`` (or ``(state_words,)``
        for a single state) with the word dtype; a new array of the same
        shape is returned, inputs are never mutated.
        """

    def _check_batch(self, states: np.ndarray) -> np.ndarray:
        """Normalise input to a 2-D batch; raise on malformed shapes."""
        arr = np.asarray(states)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[1] != self.state_words:
            raise ShapeError(
                f"{type(self).__name__} expects states of shape "
                f"(n, {self.state_words}), got {np.asarray(states).shape}"
            )
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rounds={self.rounds})"


class BlockCipher(abc.ABC):
    """A keyed block cipher acting on batches of (plaintext, key) pairs."""

    #: number of words in a block
    block_words: int
    #: number of words in a key
    key_words: int
    #: bits per word
    word_width: int

    def __init__(self, rounds: int):
        if rounds <= 0:
            raise CipherError(f"round count must be positive, got {rounds}")
        self.rounds = rounds

    @property
    def block_bits(self) -> int:
        """Block size in bits."""
        return self.block_words * self.word_width

    @abc.abstractmethod
    def encrypt(self, plaintexts: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Encrypt a batch: shapes ``(n, block_words)`` and ``(n, key_words)``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rounds={self.rounds})"


_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_cipher(name: str, factory: Callable[..., object]) -> None:
    """Register a primitive factory under a lookup name.

    Used by the experiment configuration layer so table/figure configs
    can reference ciphers by string.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise CipherError(f"cipher {name!r} is already registered")
    _REGISTRY[key] = factory


def get_cipher(name: str, **kwargs) -> object:
    """Instantiate a registered primitive by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise CipherError(f"unknown cipher {name!r}; known: {known}") from None
    return factory(**kwargs)


def registered_ciphers() -> tuple:
    """Names of all registered primitives, sorted."""
    return tuple(sorted(_REGISTRY))
