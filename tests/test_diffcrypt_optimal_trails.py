"""Tests for the exact Gift16 optimal-characteristic DP."""

import math

import numpy as np
import pytest

from repro.ciphers.gift import GIFT_SBOX
from repro.diffcrypt.optimal_trails import (
    exhibit_trail,
    gift16_optimal_weight,
    gift16_trail_vs_allinone,
    gift16_weight_vector,
    sbox_weight_table,
)
from repro.diffcrypt.sbox import SBox
from repro.errors import SearchError


class TestSboxWeightTable:
    def test_trivial_transition_free(self):
        table = sbox_weight_table()
        assert table[0, 0] == 0.0

    def test_impossible_is_inf(self):
        table = sbox_weight_table()
        sbox = SBox(GIFT_SBOX)
        impossible = np.argwhere(sbox.ddt == 0)
        a, b = impossible[1]
        assert math.isinf(table[a, b])

    def test_matches_ddt(self):
        table = sbox_weight_table()
        sbox = SBox(GIFT_SBOX)
        assert table[2, 5] == pytest.approx(-math.log2(4 / 16))
        assert table[3, 8] == pytest.approx(-math.log2(2 / 16))


class TestWeightVector:
    def test_one_round_best_is_sbox_minimum(self):
        """A single-nibble input's best 1-round weight equals the best
        S-box transition weight from that nibble."""
        table = sbox_weight_table()
        for nibble in (1, 5, 0xA):
            vector = gift16_weight_vector(1, nibble)
            assert vector.min() == pytest.approx(table[nibble].min())

    def test_zero_diff_unreachable_from_nonzero(self):
        vector = gift16_weight_vector(3, 0x0001)
        assert math.isinf(vector[0])

    def test_weights_superadditive(self):
        """Optimal r+1-round weight >= optimal r-round weight."""
        previous = 0.0
        for rounds in (1, 2, 3, 4):
            current = gift16_optimal_weight(rounds).optimal_weight
            assert current >= previous - 1e-9
            previous = current

    def test_invalid_args(self):
        with pytest.raises(SearchError):
            gift16_weight_vector(0)
        with pytest.raises(SearchError):
            gift16_weight_vector(1, 0)


class TestOptimalWeight:
    def test_one_round_value(self):
        """The GIFT S-box's best non-trivial transition has probability
        6/16, so the 1-round optimum is -log2(6/16)."""
        summary = gift16_optimal_weight(1)
        assert summary.optimal_weight == pytest.approx(-math.log2(6 / 16))

    def test_witness_reaches_claimed_weight(self):
        summary = gift16_optimal_weight(2)
        vector = gift16_weight_vector(2, summary.best_input_difference)
        assert vector[summary.best_output_difference] == pytest.approx(
            summary.optimal_weight
        )

    def test_fixed_input_never_beats_global(self):
        global_summary = gift16_optimal_weight(3)
        fixed = gift16_optimal_weight(3, input_diff=0x0001)
        assert fixed.optimal_weight >= global_summary.optimal_weight - 1e-9

    def test_data_complexity(self):
        summary = gift16_optimal_weight(2)
        assert summary.single_trail_data_complexity == pytest.approx(
            2.0**summary.optimal_weight
        )

    def test_optimal_weight_consistent_with_allinone(self):
        """The all-in-one distribution's heaviest output difference can
        never be *more* probable than ... the best characteristic bounds
        it from below: P(best diff) >= 2^-w_opt for the same input."""
        from repro.diffcrypt.allinone import gift16_markov_distribution

        summary = gift16_optimal_weight(2, input_diff=0x000C)
        dist = gift16_markov_distribution(0x000C, 2)
        best_prob = dist.max()
        assert best_prob >= 2.0**-summary.optimal_weight - 1e-12


class TestTrailVsAllInOne:
    def test_allinone_cheaper_than_single_trail(self):
        """The paper's claim, exact: the all-in-one online complexity is
        below the single-characteristic 2^w for every round count."""
        for rounds in (2, 3, 4):
            row = gift16_trail_vs_allinone(rounds, (0x0001, 0x0010))
            assert row["allinone_online_log2"] < row[
                "single_trail_complexity_log2"
            ] + 2.0  # within the same ballpark or better
        row4 = gift16_trail_vs_allinone(4, (0x0001, 0x0010))
        assert row4["allinone_online_log2"] < row4["single_trail_complexity_log2"]


class TestExhibitTrail:
    def test_length_and_start(self):
        trail = exhibit_trail(3, 0x000A)
        assert len(trail) == 4
        assert trail[0] == 0x000A

    def test_all_diffs_nonzero(self):
        trail = exhibit_trail(4, 0x0001)
        assert all(d != 0 for d in trail)
