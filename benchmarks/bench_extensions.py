"""Benchmark: the paper's §6 future-work targets, made concrete.

* GIFT-64 (the named Markov target): distinguisher accuracy sweep over
  rounds;
* Salsa and Trivium (the §2.1 non-Markov examples): accuracy at the
  round reductions where the method bites, and the abort beyond them;
* Gift16 against its exact all-in-one Bayes ceiling.
"""

from conftest import run_once

from repro.core.distinguisher import MLDistinguisher
from repro.core.extra_scenarios import (
    Gift16Scenario,
    Gift64Scenario,
    SalsaScenario,
    TriviumScenario,
)
from repro.diffcrypt.allinone import gift16_allinone
from repro.errors import DistinguisherAborted
from repro.experiments.report import format_table
from repro.nn.architectures import build_mlp

SAMPLES = 10_000


def _accuracy(scenario, seed, epochs=4, samples=SAMPLES):
    model = build_mlp([64, 128], "relu", num_classes=scenario.num_classes)
    distinguisher = MLDistinguisher(scenario, model=model, epochs=epochs, rng=seed)
    try:
        return distinguisher.train(num_samples=samples).validation_accuracy
    except DistinguisherAborted:
        return None


def test_gift64_round_sweep(benchmark):
    def run():
        return [
            (rounds, _accuracy(Gift64Scenario(rounds=rounds), seed=9))
            for rounds in (2, 3, 4, 5)
        ]

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["rounds", "accuracy"],
        [[r, "ABORT" if a is None else a] for r, a in results],
        title="GIFT-64 distinguisher (paper §6 future work)",
    ))
    by_round = dict(results)
    assert by_round[2] is not None and by_round[2] > 0.95
    assert by_round[3] is not None and by_round[3] > 0.8
    # Decay with rounds (later rounds may abort at this sample budget).
    if by_round[4] is not None:
        assert by_round[4] <= by_round[3] + 0.02


def test_nonmarkov_targets(benchmark):
    def run():
        salsa = _accuracy(SalsaScenario(rounds=1), seed=4)
        salsa_deep = _accuracy(SalsaScenario(rounds=2), seed=4)
        trivium_rows = [
            (warmup, _accuracy(TriviumScenario(warmup=warmup), seed=3))
            for warmup in (240, 384, 480)
        ]
        return salsa, salsa_deep, trivium_rows

    salsa, salsa_deep, trivium_rows = run_once(benchmark, run)
    print()
    rows = [["salsa 1 double-round", salsa],
            ["salsa 2 double-rounds", "ABORT" if salsa_deep is None else salsa_deep]]
    rows += [
        [f"trivium warmup {w}", "ABORT" if a is None else a]
        for w, a in trivium_rows
    ]
    print(format_table(["target", "accuracy"], rows,
                       title="non-Markov extension targets (§2.1 examples)"))
    assert salsa is not None and salsa > 0.95
    by_warmup = dict(trivium_rows)
    assert by_warmup[240] is not None and by_warmup[240] > 0.95
    # Signal decays with warm-up clocks.
    if by_warmup[384] is not None:
        assert by_warmup[384] < by_warmup[240] + 1e-9


def test_gift16_vs_exact_ceiling(benchmark):
    deltas = (0x0001, 0x0010)

    def run():
        rows = []
        for rounds in (2, 3, 4):
            ceiling = gift16_allinone(list(deltas), rounds).bayes_accuracy()
            measured = _accuracy(
                Gift16Scenario(rounds=rounds, deltas=deltas),
                seed=6,
                epochs=6,
                samples=20_000,
            )
            rows.append((rounds, ceiling, measured))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["rounds", "Bayes ceiling (exact)", "ML accuracy"],
        [[r, c, "ABORT" if m is None else m] for r, c, m in rows],
        title="Gift16: ML vs exact all-in-one",
    ))
    for _rounds, ceiling, measured in rows:
        if measured is not None:
            assert measured <= ceiling + 0.05
