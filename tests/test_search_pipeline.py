"""Tests for the declarative scenario config, pipeline and CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.config import (
    SCENARIO_BUILDERS,
    ScenarioBuilder,
    ScenarioSpec,
    get_scenario_builder,
    register_scenario_builder,
)
from repro.search.pipeline import run_search, run_search_pipeline

FAST_SEARCH = {
    "population_size": 12,
    "generations": 2,
    "elite": 4,
    "n_samples": 512,
    "seed": 0,
}
FAST_TRAIN = {
    "num_samples": 2000,
    "epochs": 2,
    "hidden": [16],
    "seed": 0,
    "significance": 0.2,
}


def _spec(**overrides):
    raw = {
        "name": "toyspeck-test",
        "scenario": "toyspeck",
        "params": {"rounds": 2},
        "search": dict(FAST_SEARCH),
        "train": dict(FAST_TRAIN),
    }
    raw.update(overrides)
    return ScenarioSpec.from_dict(raw)


class TestScenarioSpec:
    def test_minimal_with_differences(self):
        spec = ScenarioSpec.from_dict(
            {"scenario": "toyspeck", "differences": [[0x00, 0x40], [0x20, 0x00]]}
        )
        assert spec.name == "toyspeck"
        assert spec.differences.shape == (2, 2)
        assert spec.search is None

    def test_requires_differences_or_search(self):
        with pytest.raises(SearchError, match="differences"):
            ScenarioSpec.from_dict({"scenario": "toyspeck"})

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SearchError, match="unknown scenario"):
            ScenarioSpec.from_dict({"scenario": "nope", "search": {}})

    def test_rejects_unknown_top_level_key(self):
        with pytest.raises(SearchError, match="unknown scenario-config keys"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "search": {}, "bogus": 1}
            )

    def test_rejects_unknown_search_key(self):
        with pytest.raises(SearchError, match="unknown search keys"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "search": {"pop": 4}}
            )

    def test_rejects_unknown_train_key(self):
        with pytest.raises(SearchError, match="unknown train keys"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "search": {}, "train": {"lr": 0.1}}
            )

    def test_rejects_1d_differences(self):
        with pytest.raises(SearchError, match="2-D"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "differences": [1, 2]}
            )

    def test_from_json_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"scenario": "toyspeck", "search": FAST_SEARCH})
        )
        spec = ScenarioSpec.from_json(str(path))
        assert spec.scenario == "toyspeck"

    def test_from_json_missing_file(self, tmp_path):
        with pytest.raises(SearchError, match="no scenario config"):
            ScenarioSpec.from_json(str(tmp_path / "nope.json"))

    def test_builder_registry_rejects_duplicates(self):
        builder = SCENARIO_BUILDERS["toyspeck"]
        with pytest.raises(SearchError, match="already registered"):
            register_scenario_builder(builder)

    def test_every_builder_has_working_prototype(self):
        for name in SCENARIO_BUILDERS:
            prototype = get_scenario_builder(name).prototype()
            assert prototype.difference_masks.ndim == 2, name
            assert prototype.num_classes >= 2, name


class TestRunSearch:
    def test_search_stage_alone(self):
        result = run_search(_spec())
        assert result.ranked_masks.shape[0] >= 2
        assert result.best_score > 0

    def test_spec_without_search_section_raises(self):
        spec = ScenarioSpec.from_dict(
            {"scenario": "toyspeck", "differences": [[0x00, 0x40], [0x20, 0x00]]}
        )
        with pytest.raises(SearchError, match="no 'search' section"):
            run_search(spec)


class TestPipeline:
    def test_fixed_differences_skip_search(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "fixed",
                "scenario": "toyspeck",
                "params": {"rounds": 2},
                "differences": [[0x00, 0x40], [0x20, 0x00]],
                "train": dict(FAST_TRAIN),
            }
        )
        summary = run_search_pipeline(spec)
        assert summary["search"] is None
        assert summary["differences"] == [[0x00, 0x40], [0x20, 0x00]]
        assert 0.0 <= summary["training"]["validation_accuracy"] <= 1.0

    def test_search_then_train_then_register(self, tmp_path):
        from repro.serve import ModelRegistry

        registry = ModelRegistry(str(tmp_path / "registry"))
        summary = run_search_pipeline(_spec(), registry=registry)
        assert summary["search"] is not None
        assert "model_id" in summary

        record = registry.resolve("toyspeck-test")
        manifest = record.manifest
        # the manifest records the discovered difference set
        assert manifest["search"]["ranked_differences"]
        assert manifest["scenario"]["input_differences"] == summary["differences"]
        assert record.summary()["searched"] is True

        model, _record = registry.load("toyspeck-test")
        probe = np.zeros((3, manifest["input_shape"][0]), dtype=np.float32)
        assert model.forward(probe).shape == (3, 2)


class TestCLI:
    def test_search_only_json(self, capsys):
        from repro.search.__main__ import main

        code = main(
            [
                "--scenario", "toyspeck", "--rounds", "2",
                "--population", "12", "--generations", "2",
                "--samples", "512", "--seed", "0",
                "--search-only", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "evolutionary-bias"
        assert len(payload["ranked_differences"]) >= 2

    def test_config_file_end_to_end(self, tmp_path, capsys):
        from repro.search.__main__ import main

        config = {
            "name": "cli-e2e",
            "scenario": "toyspeck",
            "params": {"rounds": 2},
            "search": FAST_SEARCH,
            "train": FAST_TRAIN,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(config))
        code = main(
            [str(path), "--registry", str(tmp_path / "reg"), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model_id"]
        assert payload["search"]["ranked_differences"]

    def test_error_reported_not_raised(self, tmp_path, capsys):
        from repro.search.__main__ import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"scenario": "nope", "search": {}}))
        code = main([str(path), "--search-only"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err


@pytest.fixture(autouse=True)
def _fresh_obs_stream():
    # The CLI tests above configure the obs logger onto a per-test
    # captured stderr; repoint it at the live stdout so later tests
    # never write to a closed capture stream.
    import sys

    from repro.obs import log as obs_log

    obs_log.configure(stream=sys.stdout)
    yield


class TestNewScenarioFamilies:
    """The gimli-cipher, trivium and toygift builder families."""

    def test_toygift_exhaustive_search_space(self):
        builder = get_scenario_builder("toygift")
        prototype = builder.prototype()
        assert prototype.difference_masks.dtype == np.uint8
        assert prototype.input_words == 1

    def test_toygift_search_finds_nonzero_bias(self):
        spec = ScenarioSpec.from_dict(
            {
                "scenario": "toygift",
                "search": {**FAST_SEARCH, "n_samples": 1024},
            }
        )
        result = run_search(spec)
        assert result.best_score > result.noise_floor

    def test_trivium_prototype_and_build(self):
        builder = get_scenario_builder("trivium")
        prototype = builder.prototype(warmup=96, output_bits=32)
        assert prototype.input_words == 10
        masks = np.zeros((2, 10), dtype=np.uint8)
        masks[0, 0] = 1
        masks[1, 5] = 1
        spec = ScenarioSpec.from_dict(
            {
                "scenario": "trivium",
                "params": {"warmup": 96, "output_bits": 32},
                "differences": masks.tolist(),
            }
        )
        scenario = spec.build_scenario(spec.differences)
        assert scenario.output_words == 4

    def test_gimli_cipher_prototype_and_build(self):
        builder = get_scenario_builder("gimli-cipher")
        prototype = builder.prototype(total_rounds=6)
        assert prototype.difference_masks.shape[1] == 4
        masks = np.zeros((2, 4), dtype=np.uint32)
        masks[0, 1] = 1
        masks[1, 3] = 1
        spec = ScenarioSpec.from_dict(
            {
                "scenario": "gimli-cipher",
                "params": {"total_rounds": 6},
                "differences": masks.tolist(),
            }
        )
        scenario = spec.build_scenario(spec.differences)
        assert scenario.num_classes == 2


class TestSweep:
    def _cfgs(self, tmp_path):
        cfgs = [
            {
                "name": "gift-a",
                "scenario": "toygift",
                "differences": [[0x23], [0x01]],
                "train": {"num_samples": 1500, "epochs": 2, "hidden": [16],
                          "seed": 0, "significance": 0.9},
            },
            {
                "name": "gift-b",
                "scenario": "toygift",
                "differences": [[0x40], [0x02]],
                "train": {"num_samples": 1500, "epochs": 2, "hidden": [16],
                          "seed": 1, "significance": 0.9},
            },
        ]
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(cfgs))
        return path

    def test_load_sweep_validates_and_returns_raw(self, tmp_path):
        from repro.search.pipeline import load_sweep

        raws = load_sweep([str(self._cfgs(tmp_path))])
        assert [r["name"] for r in raws] == ["gift-a", "gift-b"]

    def test_load_sweep_rejects_duplicate_names(self, tmp_path):
        from repro.search.pipeline import load_sweep

        path = tmp_path / "dup.json"
        path.write_text(json.dumps([
            {"scenario": "toygift", "differences": [[0x23], [0x01]]},
            {"scenario": "toygift", "differences": [[0x40], [0x02]]},
        ]))
        with pytest.raises(SearchError, match="unique"):
            load_sweep([str(path)])

    def test_sweep_resume_is_bit_identical(self, tmp_path, monkeypatch):
        from repro.errors import JobError
        from repro.search.pipeline import load_sweep, run_sweep

        raws = load_sweep([str(self._cfgs(tmp_path))])
        straight = run_sweep(raws, queue_dir=tmp_path / "q1")

        monkeypatch.setenv("REPRO_JOBS_MAX_CELLS", "1")
        with pytest.raises(JobError, match="not processed"):
            run_sweep(raws, queue_dir=tmp_path / "q2")
        monkeypatch.delenv("REPRO_JOBS_MAX_CELLS")
        resumed = run_sweep(raws, queue_dir=tmp_path / "q2")
        assert resumed == straight
