"""Tests for the LSTM layer: shapes, semantics, BPTT gradients."""

import numpy as np
import pytest

from nn_helpers import layer_gradient_check
from repro.errors import LayerError
from repro.nn.recurrent import LSTM


class TestShapes:
    def test_last_output(self, rng):
        layer = LSTM(7)
        layer.build((5, 3), rng)
        out = layer.forward(rng.normal(size=(4, 5, 3)))
        assert out.shape == (4, 7)

    def test_return_sequences(self, rng):
        layer = LSTM(7, return_sequences=True)
        layer.build((5, 3), rng)
        out = layer.forward(rng.normal(size=(4, 5, 3)))
        assert out.shape == (4, 5, 7)

    def test_output_shape_metadata(self):
        assert LSTM(6).output_shape((9, 2)) == (6,)
        assert LSTM(6, return_sequences=True).output_shape((9, 2)) == (9, 6)

    def test_param_count_keras_formula(self, rng):
        units, features = 16, 5
        layer = LSTM(units)
        layer.build((3, features), rng)
        expected = 4 * (features * units + units * units + units)
        assert layer.count_params() == expected

    def test_needs_sequence_input(self, rng):
        with pytest.raises(LayerError):
            LSTM(4).build((10,), rng)

    def test_invalid_units(self):
        with pytest.raises(LayerError):
            LSTM(0)


class TestSemantics:
    def test_forget_bias_initialised_to_one(self, rng):
        layer = LSTM(4)
        layer.build((2, 3), rng)
        bias = layer.params[2]
        assert (bias[4:8] == 1.0).all()
        assert (bias[:4] == 0.0).all()

    def test_outputs_bounded(self, rng):
        """h = o * tanh(c) with o in (0,1) keeps |h| < 1."""
        layer = LSTM(5)
        layer.build((8, 2), rng)
        out = layer.forward(rng.normal(size=(6, 8, 2)) * 5)
        assert (np.abs(out) < 1.0).all()

    def test_zero_input_nonzero_output_possible(self, rng):
        layer = LSTM(3)
        layer.build((4, 2), rng)
        out = layer.forward(np.zeros((1, 4, 2)))
        assert np.isfinite(out).all()

    def test_time_order_matters(self, rng):
        layer = LSTM(6)
        layer.build((5, 2), rng)
        x = rng.normal(size=(1, 5, 2))
        a = layer.forward(x)
        b = layer.forward(x[:, ::-1, :])
        assert not np.allclose(a, b)


class TestGradients:
    def test_last_output_gradients(self, rng):
        x = rng.normal(size=(3, 4, 2))
        assert layer_gradient_check(LSTM(5), x, rng, samples=4) < 1e-4

    def test_sequence_output_gradients(self, rng):
        x = rng.normal(size=(2, 4, 3))
        layer = LSTM(4, return_sequences=True)
        assert layer_gradient_check(layer, x, rng, samples=4) < 1e-4

    def test_backward_before_forward(self, rng):
        layer = LSTM(3)
        layer.build((2, 2), rng)
        with pytest.raises(LayerError):
            layer.backward(np.zeros((1, 3)))
