"""Tests for the all-in-one differential baselines."""

import numpy as np
import pytest

from repro.ciphers.gift import Gift16
from repro.ciphers.toyspeck import encrypt_batch
from repro.diffcrypt.allinone import (
    AllInOneDistribution,
    bayes_accuracy,
    empirical_distribution,
    gift16_allinone,
    gift16_markov_distribution,
    toyspeck_allinone,
    toyspeck_markov_distribution,
)
from repro.errors import CipherError


class TestToySpeckDistribution:
    def test_is_distribution(self):
        dist = toyspeck_markov_distribution(0x0040, 2)
        assert abs(dist.sum() - 1.0) < 1e-9
        assert (dist >= 0).all()

    def test_zero_rounds_point_mass(self):
        dist = toyspeck_markov_distribution(0x1234, 0)
        assert dist[0x1234] == 1.0

    def test_one_round_matches_kernel(self):
        from repro.ciphers.toyspeck import round_difference_kernel

        delta = 0x0040
        assert np.allclose(
            toyspeck_markov_distribution(delta, 1), round_difference_kernel(delta)
        )

    def test_one_round_matches_sampling(self, rng):
        """One-round Markov propagation is exact (no assumption yet):
        sampled differences must follow it."""
        delta = 0x2100
        dist = toyspeck_markov_distribution(delta, 1)
        n = 1 << 13
        pts = rng.integers(0, 256, size=(n, 2), dtype=np.uint8)
        keys = rng.integers(0, 256, size=(n, 4), dtype=np.uint8)
        partner = pts.copy()
        partner[:, 0] ^= (delta >> 8) & 0xFF
        partner[:, 1] ^= delta & 0xFF
        a = encrypt_batch(pts, keys, 1)
        b = encrypt_batch(partner, keys, 1)
        observed = (
            (a[:, 0].astype(np.int64) ^ b[:, 0]) << 8
        ) | (a[:, 1].astype(np.int64) ^ b[:, 1])
        emp = empirical_distribution(observed, 1 << 16)
        # Total variation between exact and empirical should be small.
        tv = 0.5 * np.abs(dist - emp).sum()
        assert tv < 0.15

    def test_pruning_keeps_distribution(self):
        dist = toyspeck_markov_distribution(0x0040, 3, max_active=64)
        assert abs(dist.sum() - 1.0) < 1e-9

    def test_invalid_delta(self):
        with pytest.raises(CipherError):
            toyspeck_markov_distribution(1 << 16, 1)
        with pytest.raises(CipherError):
            toyspeck_markov_distribution(1, -1)


class TestGift16Distribution:
    def test_is_distribution(self):
        dist = gift16_markov_distribution(0x0001, 3)
        assert abs(dist.sum() - 1.0) < 1e-9
        assert (dist >= 0).all()

    def test_one_round_matches_sampling(self, rng):
        """With uniform round keys, Gift16 is exactly Markov — the
        computed distribution must match sampled differences."""
        delta = 0x0003
        dist = gift16_markov_distribution(delta, 2)
        n = 1 << 13
        cipher = Gift16(rounds=2)
        pts = rng.integers(0, 1 << 16, size=(n,), dtype=np.uint16)
        keys = rng.integers(0, 1 << 16, size=(n, 2), dtype=np.uint16)
        a = cipher.encrypt(pts, keys)[:, 0]
        b = cipher.encrypt(pts ^ np.uint16(delta), keys)[:, 0]
        observed = (a ^ b).astype(np.int64)
        emp = empirical_distribution(observed, 1 << 16)
        tv = 0.5 * np.abs(dist - emp).sum()
        assert tv < 0.2

    def test_diffusion_spreads_mass(self):
        one = gift16_markov_distribution(0x0001, 1)
        four = gift16_markov_distribution(0x0001, 4)
        assert np.count_nonzero(four) > np.count_nonzero(one)


class TestAllInOneDistribution:
    def test_bayes_accuracy_bounds(self):
        d = toyspeck_allinone([0x0040, 0x2000], 2)
        acc = d.bayes_accuracy()
        assert d.random_accuracy() <= acc <= 1.0

    def test_identical_rows_give_random_accuracy(self):
        row = np.full(16, 1 / 16)
        d = AllInOneDistribution(np.stack([row, row]))
        assert d.bayes_accuracy() == pytest.approx(0.5)
        assert d.advantage_vs_random() == pytest.approx(0.0)

    def test_disjoint_rows_give_perfect_accuracy(self):
        a = np.zeros(8)
        a[:4] = 0.25
        b = np.zeros(8)
        b[4:] = 0.25
        d = AllInOneDistribution(np.stack([a, b]))
        assert d.bayes_accuracy() == 1.0

    def test_classify(self):
        a = np.array([0.9, 0.1])
        b = np.array([0.2, 0.8])
        d = AllInOneDistribution(np.stack([a, b]))
        assert list(d.classify([0, 1])) == [0, 1]

    def test_validation(self):
        with pytest.raises(CipherError):
            AllInOneDistribution(np.ones((2, 4)))  # rows don't sum to 1
        with pytest.raises(CipherError):
            AllInOneDistribution(np.ones(4) / 4)  # not 2-D

    def test_bayes_accuracy_helper(self):
        rows = np.stack([np.full(4, 0.25), np.full(4, 0.25)])
        assert bayes_accuracy(rows) == pytest.approx(0.5)


class TestAccuracyDecaysWithRounds:
    def test_more_rounds_less_advantage(self):
        d2 = gift16_allinone([0x0001, 0x0010], 2)
        d6 = gift16_allinone([0x0001, 0x0010], 6)
        assert d6.bayes_accuracy() <= d2.bayes_accuracy() + 1e-9


class TestEmpiricalDistribution:
    def test_histogram(self):
        dist = empirical_distribution(np.array([0, 0, 1, 3]), 4)
        assert list(dist) == [0.5, 0.25, 0.0, 0.25]

    def test_empty_raises(self):
        with pytest.raises(CipherError):
            empirical_distribution(np.array([], dtype=np.int64), 4)
