"""1-D convolution and pooling layers (the paper's CNN comparison points).

Inputs are ``(batch, steps, channels)``.  The convolution is implemented
as a sum over kernel offsets of batched matrix products — with the small
kernels the paper's CNNs use, this is as fast as an im2col in numpy and
much simpler to differentiate.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import LayerError
from repro.nn.initializers import get_initializer
from repro.nn.layers import Layer


class Conv1D(Layer):
    """1-D convolution, stride 1, ``valid`` or ``same`` padding."""

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        padding: str = "valid",
        use_bias: bool = True,
        kernel_initializer: str = "glorot_uniform",
    ):
        super().__init__()
        if filters <= 0 or kernel_size <= 0:
            raise LayerError("filters and kernel_size must be positive")
        if padding not in ("valid", "same"):
            raise LayerError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.padding = padding
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer
        self._x: Optional[np.ndarray] = None

    def _pad_amounts(self) -> Tuple[int, int]:
        if self.padding == "valid":
            return 0, 0
        total = self.kernel_size - 1
        return total // 2, total - total // 2

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise LayerError(
                f"Conv1D expects (steps, channels) inputs, got {input_shape}"
            )
        steps, channels = input_shape
        if self.padding == "valid" and steps < self.kernel_size:
            raise LayerError(
                f"kernel size {self.kernel_size} exceeds {steps} input steps"
            )
        init = get_initializer(self.kernel_initializer)
        kernel = init((self.kernel_size, channels, self.filters), rng).astype(
            self.dtype, copy=False
        )
        self.params = [kernel]
        if self.use_bias:
            self.params.append(np.zeros(self.filters, dtype=self.dtype))
        self.grads = [np.zeros_like(p) for p in self.params]
        self.built = True

    def forward(self, x, training=False):
        left, right = self._pad_amounts()
        if left or right:
            x = np.pad(x, ((0, 0), (left, right), (0, 0)))
        self._x = x if training else None
        kernel = self.params[0]
        out_steps = x.shape[1] - self.kernel_size + 1
        out = np.zeros((x.shape[0], out_steps, self.filters), dtype=x.dtype)
        for offset in range(self.kernel_size):
            out += x[:, offset:offset + out_steps, :] @ kernel[offset]
        if self.use_bias:
            out += self.params[1]
        return out

    def backward(self, grad):
        if self._x is None:
            raise LayerError("backward called without a training forward pass")
        x = self._x
        kernel = self.params[0]
        out_steps = grad.shape[1]
        kernel_grad = np.zeros_like(kernel)
        x_grad = np.zeros_like(x)
        for offset in range(self.kernel_size):
            window = x[:, offset:offset + out_steps, :]
            kernel_grad[offset] = np.tensordot(window, grad, axes=([0, 1], [0, 1]))
            x_grad[:, offset:offset + out_steps, :] += grad @ kernel[offset].T
        self.grads[0] = kernel_grad
        if self.use_bias:
            self.grads[1] = grad.sum(axis=(0, 1))
        left, right = self._pad_amounts()
        if left or right:
            end = x_grad.shape[1] - right
            x_grad = x_grad[:, left:end, :]
        return x_grad

    def output_shape(self, input_shape):
        steps, _channels = input_shape
        if self.padding == "same":
            return (steps, self.filters)
        return (steps - self.kernel_size + 1, self.filters)

    def get_config(self):
        return {
            "filters": self.filters,
            "kernel_size": self.kernel_size,
            "padding": self.padding,
            "use_bias": self.use_bias,
            "kernel_initializer": self.kernel_initializer,
        }


class MaxPool1D(Layer):
    """Max pooling with non-overlapping windows (stride == pool size)."""

    def __init__(self, pool_size: int = 2):
        super().__init__()
        if pool_size <= 0:
            raise LayerError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self._cache: Optional[Tuple] = None

    def forward(self, x, training=False):
        n, steps, channels = x.shape
        usable = (steps // self.pool_size) * self.pool_size
        trimmed = x[:, :usable, :]
        windows = trimmed.reshape(
            n, usable // self.pool_size, self.pool_size, channels
        )
        out = windows.max(axis=2)
        if training:
            argmax = windows.argmax(axis=2)
            self._cache = (x.shape, usable, argmax)
        else:
            self._cache = None
        return out

    def backward(self, grad):
        if self._cache is None:
            raise LayerError("backward called without a training forward pass")
        shape, usable, argmax = self._cache
        n, steps, channels = shape
        pooled = usable // self.pool_size
        x_grad = np.zeros(shape, dtype=grad.dtype)
        windows = np.zeros((n, pooled, self.pool_size, channels), dtype=grad.dtype)
        n_idx, p_idx, c_idx = np.meshgrid(
            np.arange(n), np.arange(pooled), np.arange(channels), indexing="ij"
        )
        windows[n_idx, p_idx, argmax, c_idx] = grad
        x_grad[:, :usable, :] = windows.reshape(n, usable, channels)
        return x_grad

    def output_shape(self, input_shape):
        steps, channels = input_shape
        return (steps // self.pool_size, channels)

    def get_config(self):
        return {"pool_size": self.pool_size}


class GlobalAveragePool1D(Layer):
    """Average over the step axis, producing ``(batch, channels)``."""

    def __init__(self):
        super().__init__()
        self._steps: Optional[int] = None

    def forward(self, x, training=False):
        self._steps = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad):
        if self._steps is None:
            raise LayerError("backward called without a forward pass")
        expanded = np.repeat(grad[:, np.newaxis, :], self._steps, axis=1)
        return expanded / self._steps

    def output_shape(self, input_shape):
        _steps, channels = input_shape
        return (channels,)
