"""Tests for SBox analysis: DDT, LAT, branch number, paper anchors."""

import numpy as np
import pytest

from repro.ciphers.gift import GIFT_SBOX
from repro.diffcrypt.sbox import SBox
from repro.errors import CipherError


@pytest.fixture(scope="module")
def gift():
    return SBox(GIFT_SBOX)


class TestConstruction:
    def test_non_power_of_two_raises(self):
        with pytest.raises(CipherError):
            SBox([0, 1, 2])

    def test_out_of_range_entry_raises(self):
        with pytest.raises(CipherError):
            SBox([0, 1, 2, 4])

    def test_bits(self, gift):
        assert gift.bits == 4
        assert gift.size == 16


class TestDDT:
    def test_row_sums(self, gift):
        assert (gift.ddt.sum(axis=1) == 16).all()

    def test_trivial_entry(self, gift):
        assert gift.ddt[0, 0] == 16
        assert (gift.ddt[0, 1:] == 0).all()

    def test_entries_even(self, gift):
        assert (gift.ddt % 2 == 0).all()

    def test_paper_quoted_transitions(self, gift):
        """§2.1: P(2 -> 5) has 4 solutions, P(3 -> 8) has 2."""
        assert gift.ddt[2, 5] == 4
        assert gift.ddt[3, 8] == 2
        assert gift.ddt[6, 2] == 4

    def test_paper_quoted_tuples(self, gift):
        """§2.1 lists the valid tuples explicitly."""
        uppers = [x for x, _ in gift.valid_input_pairs(2, 5)]
        lowers = [x for x, _ in gift.valid_input_pairs(3, 8)]
        assert uppers == [0, 2, 4, 6]
        assert lowers == [0xD, 0xE]

    def test_probability(self, gift):
        assert gift.differential_probability(2, 5) == 4 / 16
        assert gift.differential_weight(2, 5) == 2.0

    def test_impossible_weight(self, gift):
        impossible = np.argwhere(gift.ddt[1:] == 0)
        a, b = impossible[0]
        assert gift.differential_weight(int(a) + 1, int(b)) == float("inf")


class TestUniformityAndBranch:
    def test_gift_uniformity_is_6(self, gift):
        assert gift.differential_uniformity == 6

    def test_branch_number(self, gift):
        # Any bijective 4-bit S-box has branch number >= 2.
        assert gift.differential_branch_number >= 2

    def test_identity_branch_number(self):
        identity = SBox(list(range(16)))
        assert identity.differential_branch_number == 2


class TestLAT:
    def test_zero_row(self, gift):
        assert gift.lat[0, 0] == 8
        assert (gift.lat[0, 1:] == 0).all()

    def test_bounded(self, gift):
        assert np.abs(gift.lat).max() <= 8


class TestInverse:
    def test_inverse_composition(self, gift):
        inv = gift.inverse
        for x in range(16):
            assert inv(gift(x)) == x

    def test_non_permutation_has_no_inverse(self):
        with pytest.raises(CipherError):
            SBox([0] * 16).inverse

    def test_is_permutation_flag(self, gift):
        assert gift.is_permutation
        assert not SBox([0] * 16).is_permutation


class TestFixedPoints:
    def test_gift_fixed_points(self, gift):
        expected = tuple(x for x in range(16) if GIFT_SBOX[x] == x)
        assert gift.fixed_points == expected

    def test_identity_all_fixed(self):
        assert SBox(list(range(4))).fixed_points == (0, 1, 2, 3)
