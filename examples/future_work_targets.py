"""The paper's §6 future work, made runnable.

The conclusion proposes experimenting with "other non-Markov ciphers
and Markov ciphers like GIFT", and replacing the neural network with an
SVM.  This example does all three:

* round-reduced **GIFT-64** distinguishers (fresh keys per sample);
* the §2.1 non-Markov examples, **Salsa** (reduced double rounds) and
  **Trivium** (reduced warm-up clocks, IV differences);
* the Gimli-Hash distinguisher retrained with a **linear SVM** instead
  of the MLP.

Usage::

    python examples/future_work_targets.py
"""

import time

from repro.core.distinguisher import MLDistinguisher
from repro.core.extra_scenarios import (
    Gift64Scenario,
    SalsaScenario,
    TriviumScenario,
)
from repro.core.scenario import GimliHashScenario
from repro.errors import DistinguisherAborted
from repro.nn.architectures import build_mlp
from repro.nn.svm import LinearSVM

SAMPLES = 10_000


def train(label, scenario, model=None, epochs=4):
    if model is None:
        model = build_mlp([64, 128], "relu", num_classes=scenario.num_classes)
    distinguisher = MLDistinguisher(scenario, model=model, epochs=epochs, rng=7)
    start = time.perf_counter()
    try:
        report = distinguisher.train(num_samples=SAMPLES)
        print(f"{label:<38} accuracy {report.validation_accuracy:.4f} "
              f"({time.perf_counter() - start:.1f}s)")
    except DistinguisherAborted:
        print(f"{label:<38} ABORT (no signal at {SAMPLES} samples)")


def main() -> None:
    print("== GIFT-64 (Markov, paper's named future-work cipher) ==")
    for rounds in (2, 3, 4, 5):
        train(f"GIFT-64, {rounds} rounds", Gift64Scenario(rounds=rounds))

    print("\n== Salsa double rounds (non-Markov, §2.1) ==")
    for rounds in (1, 2):
        train(f"Salsa, {rounds} double round(s)", SalsaScenario(rounds=rounds))

    print("\n== Trivium warm-up reduction (non-Markov, §2.1) ==")
    for warmup in (240, 384, 480):
        train(f"Trivium, warmup {warmup}", TriviumScenario(warmup=warmup))

    print("\n== SVM instead of the neural network (§6) ==")
    scenario = GimliHashScenario(rounds=6)
    svm = LinearSVM(num_classes=2, learning_rate=0.1)
    svm.build((scenario.feature_bits,))
    train("Gimli-Hash 6 rounds, linear SVM", scenario, model=svm, epochs=6)
    train("Gimli-Hash 6 rounds, MLP", scenario)


if __name__ == "__main__":
    main()
