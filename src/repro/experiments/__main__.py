"""Command-line entry point: ``python -m repro.experiments <name>``.

Examples::

    python -m repro.experiments figure1
    REPRO_SCALE=0.2 python -m repro.experiments table2
    python -m repro.experiments table3 --seed 7
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_table


def _print_result(result: dict) -> None:
    rows = result.get("rows", [])
    if rows:
        headers = list(rows[0].keys())
        table_rows = [[row.get(h) for h in headers] for row in rows]
        print(format_table(headers, table_rows, title=result.get("experiment")))
    meta = {k: v for k, v in result.items() if k != "rows"}
    print(json.dumps(meta, indent=2, default=str))


def main(argv=None) -> int:
    """Parse arguments, run the experiment(s), print results."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment to run ('all' runs every registered experiment)",
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        kwargs = {}
        if args.seed is not None and name not in ("figure1", "complexity"):
            kwargs["rng"] = args.seed
        result = run_experiment(name, **kwargs)
        _print_result(result)
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
