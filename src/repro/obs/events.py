"""The run event bus: an append-only ``events.jsonl`` per run directory.

Spans answer *how long did things take*; the event bus answers *what is
happening right now*.  Every process participating in a run — the
parent runner, pool workers mid-``fit``, the serving tier — appends
one-line JSON events to ``<run_dir>/events.jsonl``:

===================  ====================================================
event                emitted by
===================  ====================================================
``run.start/done``   the manifest writer, bracketing an experiment
``run.plan``         the job runner (totals: completed/to-run/deferred)
``cell.start``       the job runner, when a cell is marked running
``cell.retry``       inside the worker, between retry attempts
``cell.done/failed`` the job runner, as each cell's outcome lands
``cell.stall``       the grid scheduler's stall detector
``queue.depth``      the job runner, after each completed cell
``fit.epoch``        ``Sequential.fit``, one tick per epoch
``serve.slo_breach`` the serving tier's health evaluator
===================  ====================================================

Writes open the file in append mode and emit the whole line in a single
``write`` call: POSIX ``O_APPEND`` makes each line atomic with respect
to other writers, so the parent and N workers can share the file
without locks, and a reader never has to repair interleaved lines (a
torn *final* line from a killed process is skipped by the reader).

:func:`emit` resolves the target from the ambient
:class:`~repro.obs.context.RunContext` when ``run_dir`` is not given;
with neither it is a no-op costing one attribute check, so
instrumentation points (``fit`` epoch ticks) stay free outside runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import context as obs_context

EVENTS_FILENAME = "events.jsonl"


def events_path(run_dir) -> Path:
    """Where the event bus for ``run_dir`` lives."""
    return Path(run_dir) / EVENTS_FILENAME


def emit(event: str, run_dir=None, **fields) -> bool:
    """Append one event; returns whether anything was written.

    ``run_dir=None`` targets the ambient run context (no-op without
    one).  I/O errors are swallowed — telemetry must never take down
    the run it is observing.
    """
    run_id = None
    if run_dir is None:
        ctx = obs_context.current()
        if ctx is None:
            return False
        run_dir = ctx.run_dir
        run_id = ctx.run_id
    record: Dict = {
        "ts": round(time.time(), 6),
        "pid": os.getpid(),
        "event": str(event),
    }
    if run_id is not None:
        record["run_id"] = run_id
    record.update(fields)
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    try:
        path = events_path(run_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)
    except OSError:
        return False
    return True


def read_events(run_dir, limit: Optional[int] = None,
                event: Optional[str] = None) -> List[dict]:
    """Parse the event bus, oldest first; tolerant of a torn last line.

    ``event`` filters by event name; ``limit`` keeps only the newest
    ``limit`` entries (after filtering).
    """
    path = events_path(run_dir)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    records: List[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a killed writer's torn line
        if not isinstance(record, dict):
            continue
        if event is not None and record.get("event") != event:
            continue
        records.append(record)
    if limit is not None and limit >= 0:
        records = records[-limit:] if limit else []
    return records


def event_counts(run_dir) -> Dict[str, int]:
    """``{event name: count}`` over the whole bus."""
    counts: Dict[str, int] = {}
    for record in read_events(run_dir):
        name = str(record.get("event", "?"))
        counts[name] = counts.get(name, 0) + 1
    return counts
