"""Serving telemetry: latency percentiles, throughput, batching shape.

One :class:`ServeMetrics` instance is shared by the micro-batching
engine and the HTTP front-end.  Since the observability PR it is a thin
facade over a :class:`repro.obs.metrics.MetricsRegistry`: counters,
gauges, and windowed histograms live in the registry (so the same
numbers come out of ``GET /v1/metrics?format=prometheus``), while
``snapshot()`` keeps rendering the exact JSON structure the original
implementation served at ``GET /v1/metrics`` and embedded in
``BENCH_serve.json``.

Each instance gets its own registry by default — two servers (or two
tests) never share series — but a shared registry can be injected when
one exposition should cover several components.  The per-request and
per-batch latency histograms keep bounded sliding windows (oldest
samples drop once ``window`` is full), so a long-lived server's
percentiles always reflect recent behaviour.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry

#: Rolling (status, latency) window for SLO evaluation: big enough for a
#: stable p99, small enough that a recovered server stops reporting a
#: breach within a few hundred requests.
HTTP_WINDOW = 512

#: SLO defaults, each overridable by a ``REPRO_OBS_SLO_*`` knob.
DEFAULT_SLO_ERROR_RATE = 0.05
DEFAULT_SLO_P99_MS = 250.0
DEFAULT_SLO_MIN_SAMPLES = 20

#: Batch-size histogram buckets: power-of-two ceilings, matching the
#: original implementation's bucketing rule (3 rows -> bucket 4).
BATCH_SIZE_BUCKETS = tuple(1 << i for i in range(21))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ServeError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ServeError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _latency_summary(window: Sequence[float]) -> Optional[Dict[str, float]]:
    if not window:
        return None
    values = list(window)
    return {
        "mean_ms": 1e3 * sum(values) / len(values),
        "p50_ms": 1e3 * percentile(values, 50.0),
        "p95_ms": 1e3 * percentile(values, 95.0),
        "p99_ms": 1e3 * percentile(values, 99.0),
        "max_ms": 1e3 * max(values),
    }


class ServeMetrics:
    """Thread-safe request/batch/queue telemetry for the serving stack."""

    def __init__(self, window: int = 65536, registry: Optional[MetricsRegistry] = None):
        if window <= 0:
            raise ServeError(f"metrics window must be positive, got {window}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests = self.registry.counter("repro_serve_requests_total")
        self._rows = self.registry.counter("repro_serve_rows_total")
        self._timeouts = self.registry.counter("repro_serve_timeouts_total")
        self._rejected = self.registry.counter("repro_serve_rejected_total")
        self._batches = self.registry.counter("repro_serve_batches_total")
        self._batch_rows = self.registry.counter("repro_serve_batch_rows_total")
        self._request_latency = self.registry.histogram(
            "repro_serve_request_latency_seconds", window=window
        )
        self._batch_latency = self.registry.histogram(
            "repro_serve_batch_latency_seconds", window=window
        )
        self._batch_size = self.registry.histogram(
            "repro_serve_batch_size", buckets=BATCH_SIZE_BUCKETS, window=window
        )
        self._queue_depth = self.registry.gauge("repro_serve_queue_depth")
        # Scalars with no Prometheus analogue (the JSON keeps them).
        self._batch_max = 0
        self._queue_depth_sum = 0
        # Rolling (status, latency_s) pairs from the HTTP front-end,
        # consumed by SLO evaluation; bounded so a long-lived server's
        # verdict tracks recent behaviour, not its whole lifetime.
        self._http_window: deque = deque(maxlen=HTTP_WINDOW)

    # -- recording ---------------------------------------------------------

    def record_request(self, latency_s: float, rows: int = 1) -> None:
        """One answered request: end-to-end latency and its row count."""
        self._requests.inc()
        self._rows.inc(int(rows))
        self._request_latency.observe(float(latency_s))

    def record_batch(self, size: int, queue_depth: int, latency_s: float) -> None:
        """One coalesced inference batch run by the engine.

        ``queue_depth`` is the depth sampled by the engine *when the
        batch was assembled* (under the engine lock), not re-read here.
        """
        size = int(size)
        self._batches.inc()
        self._batch_rows.inc(size)
        self._batch_size.observe(size)
        self._batch_latency.observe(float(latency_s))
        self._queue_depth.set(int(queue_depth))
        with self._lock:
            self._batch_max = max(self._batch_max, size)
            self._queue_depth_sum += int(queue_depth)

    def record_timeout(self) -> None:
        """A request whose deadline expired before it could be answered."""
        self._timeouts.inc()

    def record_http(self, status: int, latency_s: float) -> None:
        """One HTTP response (any route) for the SLO rolling window."""
        with self._lock:
            self._http_window.append((int(status), float(latency_s)))

    def http_window(self) -> List[Tuple[int, float]]:
        """The retained (status, latency_s) pairs, oldest first."""
        with self._lock:
            return list(self._http_window)

    def record_rejection(self) -> None:
        """A request shed by queue-depth backpressure."""
        self._rejected.inc()

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of everything recorded so far.

        Structure (and values) are identical to the pre-registry
        implementation; ``test_serve_http.py`` and ``BENCH_serve.json``
        consume it unchanged.
        """
        with self._lock:
            batch_max = self._batch_max
            queue_depth_sum = self._queue_depth_sum
        elapsed = max(time.monotonic() - self._started, 1e-9)
        requests = int(self._requests.value)
        batches = int(self._batches.value)
        size_counts = self._batch_size.bucket_counts()
        return {
            "uptime_s": elapsed,
            "requests": {
                "count": requests,
                "rows": int(self._rows.value),
                "timeouts": int(self._timeouts.value),
                "rejected": int(self._rejected.value),
                "throughput_rps": requests / elapsed,
                "row_throughput_rps": self._rows.value / elapsed,
                "latency": _latency_summary(
                    self._request_latency.window_values()
                ),
            },
            "batches": {
                "count": batches,
                "mean_size": (
                    self._batch_rows.value / batches if batches else 0.0
                ),
                "max_size": batch_max,
                "size_histogram": {
                    str(int(bucket)): count
                    for bucket, count in sorted(size_counts.items())
                    if count
                },
                "latency": _latency_summary(
                    self._batch_latency.window_values()
                ),
            },
            "queue": {
                "mean_depth": (
                    queue_depth_sum / batches if batches else 0.0
                ),
                "max_depth": int(self._queue_depth.max),
            },
        }

    def request_latencies(self) -> List[float]:
        """The retained per-request latency window (seconds), oldest first."""
        return self._request_latency.window_values()


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ServeError(f"{name} must be a float, got {raw!r}") from None
    if value <= 0:
        raise ServeError(f"{name} must be positive, got {value}")
    return value


def _env_samples(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ServeError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ServeError(f"{name} must be >= 1, got {value}")
    return value


class SloPolicy:
    """Rolling-window SLO thresholds for the serving front-end.

    Two objectives over the last :data:`HTTP_WINDOW` responses (the
    ``/healthz`` route itself excluded, so health polling cannot mask or
    cause a breach):

    * **availability** — the fraction of 5xx responses must stay at or
      below ``error_rate``;
    * **latency** — the p99 response time must stay at or below
      ``p99_ms`` milliseconds.

    With fewer than ``min_samples`` responses in the window the verdict
    is ``"unknown"``: an idle server is neither healthy nor breached,
    and twenty quiet seconds after a deploy should not page anyone.
    """

    def __init__(
        self,
        error_rate: float = DEFAULT_SLO_ERROR_RATE,
        p99_ms: float = DEFAULT_SLO_P99_MS,
        min_samples: int = DEFAULT_SLO_MIN_SAMPLES,
    ):
        if not 0 < error_rate <= 1:
            raise ServeError(
                f"SLO error rate must be in (0, 1], got {error_rate}"
            )
        if p99_ms <= 0:
            raise ServeError(f"SLO p99 must be positive, got {p99_ms}")
        if min_samples < 1:
            raise ServeError(
                f"SLO min samples must be >= 1, got {min_samples}"
            )
        self.error_rate = float(error_rate)
        self.p99_ms = float(p99_ms)
        self.min_samples = int(min_samples)

    @classmethod
    def from_env(cls) -> "SloPolicy":
        """Thresholds from ``REPRO_OBS_SLO_*`` knobs (see EXPERIMENTS.md)."""
        return cls(
            error_rate=_env_float(
                "REPRO_OBS_SLO_ERROR_RATE", DEFAULT_SLO_ERROR_RATE
            ),
            p99_ms=_env_float("REPRO_OBS_SLO_P99_MS", DEFAULT_SLO_P99_MS),
            min_samples=_env_samples(
                "REPRO_OBS_SLO_MIN_SAMPLES", DEFAULT_SLO_MIN_SAMPLES
            ),
        )

    def evaluate(self, metrics: ServeMetrics) -> Dict:
        """The SLO verdict over the metrics' rolling HTTP window."""
        window = metrics.http_window()
        samples = len(window)
        verdict: Dict = {
            "samples": samples,
            "thresholds": {
                "error_rate": self.error_rate,
                "p99_ms": self.p99_ms,
                "min_samples": self.min_samples,
            },
        }
        if samples < self.min_samples:
            verdict["status"] = "unknown"
            verdict["breaches"] = []
            return verdict
        errors = sum(1 for status, _ in window if status >= 500)
        error_rate = errors / samples
        p99_ms = 1e3 * percentile([lat for _, lat in window], 99.0)
        breaches = []
        if error_rate > self.error_rate:
            breaches.append("error_rate")
        if p99_ms > self.p99_ms:
            breaches.append("p99_latency")
        verdict["error_rate"] = error_rate
        verdict["p99_ms"] = p99_ms
        verdict["breaches"] = breaches
        verdict["status"] = "breached" if breaches else "ok"
        return verdict
