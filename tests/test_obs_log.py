"""Tests for repro.obs.log: structured JSON-lines logging.

The contract under test: every emitted event is one line, carries the
schema fields (ts/level/logger/event) plus bound context and per-call
fields, respects the level threshold, and costs nothing observable when
the mode is ``off``.  ``Sequential.fit(verbose=True)`` is a plain
consumer of this logger.
"""

import io
import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _restore_logging():
    """Leave the process-wide logging configuration as we found it."""
    saved = (
        obs_log._mode,
        obs_log._threshold,
        obs_log._stream,
        obs_log._file_path,
    )
    yield
    obs_log._mode, obs_log._threshold, obs_log._stream, obs_log._file_path = saved
    if obs_log._file_handle is not None:
        obs_log._file_handle.close()
        obs_log._file_handle = None


def _capture(mode="json", level="debug"):
    sink = io.StringIO()
    obs_log.configure(mode=mode, level=level, stream=sink)
    return sink


def _lines(sink):
    return [line for line in sink.getvalue().splitlines() if line]


class TestJsonSchema:
    def test_one_json_object_per_line(self):
        sink = _capture()
        logger = obs_log.get_logger("test.schema")
        logger.info("first", value=1)
        logger.info("second", value=2)
        records = [json.loads(line) for line in _lines(sink)]
        assert [r["event"] for r in records] == ["first", "second"]

    def test_schema_fields(self):
        sink = _capture()
        obs_log.get_logger("test.schema").info("evt", loss=0.5, epoch=3)
        (record,) = [json.loads(line) for line in _lines(sink)]
        assert record["level"] == "info"
        assert record["logger"] == "test.schema"
        assert record["event"] == "evt"
        assert record["loss"] == 0.5
        assert record["epoch"] == 3
        assert isinstance(record["ts"], float)

    def test_non_json_values_stringified(self):
        sink = _capture()
        obs_log.get_logger("test.schema").info("evt", value=np.float64(0.25))
        (record,) = [json.loads(line) for line in _lines(sink)]
        # numpy scalars survive via default=str; the line stays valid JSON.
        assert float(record["value"]) == 0.25


class TestBoundContext:
    def test_bind_carries_fields(self):
        sink = _capture()
        logger = obs_log.get_logger("test.bind").bind(run="r1", seed=7)
        logger.info("evt", extra=True)
        (record,) = [json.loads(line) for line in _lines(sink)]
        assert record["run"] == "r1"
        assert record["seed"] == 7
        assert record["extra"] is True

    def test_bind_does_not_mutate_parent(self):
        parent = obs_log.get_logger("test.bind.parent")
        child = parent.bind(shard=3)
        assert parent.context == {}
        assert child.context == {"shard": 3}

    def test_call_fields_override_context(self):
        sink = _capture()
        obs_log.get_logger("t").bind(value=1).info("evt", value=2)
        (record,) = [json.loads(line) for line in _lines(sink)]
        assert record["value"] == 2

    def test_get_logger_cached(self):
        assert obs_log.get_logger("same") is obs_log.get_logger("same")


class TestLevels:
    def test_threshold_filters(self):
        sink = _capture(level="warning")
        logger = obs_log.get_logger("test.levels")
        logger.debug("dropped")
        logger.info("dropped")
        logger.warning("kept")
        logger.error("kept")
        events = [json.loads(line)["event"] for line in _lines(sink)]
        assert events == ["kept", "kept"]

    def test_enabled_reflects_configuration(self):
        _capture(level="info")
        assert not obs_log.enabled("debug")
        assert obs_log.enabled("info")
        obs_log.configure(mode="off")
        assert not obs_log.enabled("error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ReproError):
            obs_log.configure(level="verbose")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            obs_log.configure(mode="syslog")


class TestOffMode:
    def test_off_emits_nothing(self):
        sink = _capture()
        obs_log.configure(mode="off")
        obs_log.get_logger("test.off").error("never")
        assert sink.getvalue() == ""


class TestTextMode:
    def test_text_render(self):
        sink = _capture(mode="text")
        obs_log.get_logger("repro.nn").info(
            "train.epoch", epoch=1, loss=0.693147
        )
        (line,) = _lines(sink)
        assert line.startswith("[repro.nn] train.epoch")
        assert "epoch=1" in line
        assert "loss=0.6931" in line  # floats shortened for reading


class TestFileSink:
    def test_file_sink_is_json_lines(self, tmp_path):
        target = tmp_path / "events.jsonl"
        sink = io.StringIO()
        obs_log.configure(
            mode="text", level="debug", stream=sink, file=str(target)
        )
        obs_log.get_logger("test.file").info("evt", value=9)
        records = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line
        ]
        assert records[0]["event"] == "evt"
        assert records[0]["value"] == 9
        # The console stream still got the text rendering.
        assert "[test.file] evt" in sink.getvalue()

    def test_file_sink_appends(self, tmp_path):
        target = tmp_path / "events.jsonl"
        obs_log.configure(
            mode="json", level="debug", stream=io.StringIO(), file=str(target)
        )
        logger = obs_log.get_logger("test.file")
        logger.info("a")
        obs_log.configure(file=str(target))  # reopen
        logger.info("b")
        events = [
            json.loads(line)["event"]
            for line in target.read_text().splitlines()
            if line
        ]
        assert events == ["a", "b"]


class TestConfigureFromEnv:
    def test_env_roundtrip(self, monkeypatch):
        monkeypatch.setenv(obs_log.MODE_ENV_VAR, "json")
        monkeypatch.setenv(obs_log.LEVEL_ENV_VAR, "warning")
        monkeypatch.delenv(obs_log.FILE_ENV_VAR, raising=False)
        obs_log.configure_from_env()
        assert obs_log._mode == "json"
        assert not obs_log.enabled("info")

    def test_bad_env_mode_raises(self, monkeypatch):
        monkeypatch.setenv(obs_log.MODE_ENV_VAR, "nope")
        with pytest.raises(ReproError):
            obs_log.configure_from_env()


class TestFitRouting:
    def _data(self):
        rng = np.random.default_rng(0)
        x = (rng.random((64, 16)) > 0.5).astype(np.float64)
        y = rng.integers(0, 2, 64)
        return x, y

    def _model(self):
        from repro.nn import Adam, CategoricalCrossentropy, Dense, ReLU, Sequential

        model = Sequential([Dense(8), ReLU(), Dense(2)])
        model.build((16,), rng=0)
        model.compile(loss=CategoricalCrossentropy(), optimizer=Adam())
        return model

    def test_verbose_fit_emits_info_epoch_events(self):
        sink = _capture(mode="json", level="info")
        x, y = self._data()
        self._model().fit(x, y, epochs=3, batch_size=32, rng=1, verbose=True)
        records = [json.loads(line) for line in _lines(sink)]
        epochs = [r for r in records if r["event"] == "train.epoch"]
        assert len(epochs) == 3
        assert epochs[0]["logger"] == "repro.nn"
        assert epochs[0]["epoch"] == 1 and epochs[0]["epochs"] == 3
        assert {"loss", "accuracy", "time"} <= set(epochs[0])

    def test_quiet_fit_is_silent_at_info(self):
        sink = _capture(mode="json", level="info")
        x, y = self._data()
        self._model().fit(x, y, epochs=2, batch_size=32, rng=1, verbose=False)
        assert _lines(sink) == []

    def test_quiet_fit_visible_at_debug(self):
        sink = _capture(mode="json", level="debug")
        x, y = self._data()
        self._model().fit(x, y, epochs=2, batch_size=32, rng=1, verbose=False)
        events = [json.loads(line)["event"] for line in _lines(sink)]
        assert events.count("train.epoch") == 2
