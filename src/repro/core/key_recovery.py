"""Last-round key recovery on round-reduced SPECK (Gohr-style).

The paper's §6 lists key recovery as an open problem ("our model does
not have a key recovery functionality"); Gohr's CRYPTO'19 work — the
paper's §2.3 foundation — shows how a neural distinguisher becomes a
key-recovery attack: guess the final round key, peel the last round off
every ciphertext pair, and ask the ``r``-round distinguisher whether the
result looks like cipher data.  The correct guess makes the pairs follow
the ``r``-round distribution; wrong guesses act like one extra random
round.

This module implements that attack for SPECK-32/64:

1. train a real-vs-random distinguisher for ``r`` rounds
   (:class:`~repro.core.scenario.SpeckRealOrRandomScenario`);
2. collect ciphertext pairs from ``r + 1``-round SPECK under an unknown
   key;
3. score every candidate last-round subkey by the distinguisher's mean
   real-class probability after one-round decryption, and rank.

``candidate_bits`` restricts the sweep to the low bits of the subkey
(with the remaining bits assumed known), trading attack strength for
runtime — handy for tests and laptop-scale demos; the full 16-bit sweep
is the real attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ciphers.speck import (
    ALPHA,
    BETA,
    WORD_BITS,
    encrypt_batch,
    expand_key_batch,
)
from repro.core.scenario import SpeckRealOrRandomScenario
from repro.errors import DistinguisherError
from repro.nn.architectures import build_mlp
from repro.nn.model import Sequential
from repro.utils.encoding import state_to_bits
from repro.utils.rng import derive_rng, make_rng


def _rotl_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    return ((arr << np.uint16(amount)) | (arr >> np.uint16(WORD_BITS - amount))).astype(
        np.uint16
    )


def _rotr_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    return _rotl_arr(arr, WORD_BITS - amount)


def decrypt_last_round(
    ciphertexts: np.ndarray, round_key: np.ndarray
) -> np.ndarray:
    """Undo one SPECK round for a batch of ``(x, y)`` words.

    ``round_key`` is either a scalar or per-sample array; broadcasting
    follows numpy rules.
    """
    cts = np.asarray(ciphertexts, dtype=np.uint16)
    x = cts[..., 0]
    y = cts[..., 1]
    y_prev = _rotr_arr(x ^ y, BETA)
    x_prev = _rotl_arr(((x ^ round_key) - y_prev).astype(np.uint16), ALPHA)
    return np.stack([x_prev, y_prev], axis=-1)


@dataclass
class RecoveryResult:
    """Ranked candidate subkeys with their distinguisher scores."""

    candidates: np.ndarray  # sorted by descending score
    scores: np.ndarray
    true_key: Optional[int] = None

    @property
    def best(self) -> int:
        """Highest-scoring candidate."""
        return int(self.candidates[0])

    def rank_of(self, key: int) -> int:
        """0-based rank of ``key`` among the candidates."""
        positions = np.nonzero(self.candidates == np.uint16(key))[0]
        if positions.size == 0:
            raise DistinguisherError(
                f"key {key:#06x} is not among the scored candidates"
            )
        return int(positions[0])

    @property
    def true_key_rank(self) -> Optional[int]:
        """Rank of the recorded true key (if one was recorded)."""
        if self.true_key is None:
            return None
        return self.rank_of(self.true_key)


class SpeckKeyRecovery:
    """Gohr-style last-round-subkey recovery for round-reduced SPECK."""

    def __init__(
        self,
        attack_rounds: int = 4,
        delta: int = 0x0040_0000,
        model: Optional[Sequential] = None,
        epochs: int = 5,
        rng=None,
    ):
        if attack_rounds < 2:
            raise DistinguisherError(
                f"need at least 2 rounds to peel one off, got {attack_rounds}"
            )
        self.attack_rounds = int(attack_rounds)
        self.distinguisher_rounds = self.attack_rounds - 1
        self.delta = int(delta)
        self.epochs = int(epochs)
        self._rng = make_rng(rng)
        self.scenario = SpeckRealOrRandomScenario(
            rounds=self.distinguisher_rounds, delta=self.delta
        )
        self.model = model if model is not None else build_mlp(
            [64, 256, 256], "relu"
        )
        self._trained = False

    # -- phase 1: the r-round distinguisher ----------------------------------

    def train_distinguisher(self, num_samples: int = 50_000) -> float:
        """Train the ``r``-round real-vs-random model; returns accuracy."""
        x, y = self.scenario.generate_dataset(
            max(1, num_samples // 2), rng=derive_rng(self._rng, "data")
        )
        if self.model.input_shape is None:
            self.model.build(x.shape[1:], derive_rng(self._rng, "weights"))
        if self.model.loss is None:
            self.model.compile()
        cut = int(round(x.shape[0] * 0.9))
        self.model.fit(
            x[:cut], y[:cut],
            epochs=self.epochs,
            batch_size=256,
            rng=derive_rng(self._rng, "batches"),
        )
        _, metrics = self.model.evaluate(x[cut:], y[cut:])
        self._trained = True
        return metrics["accuracy"]

    # -- phase 2: data collection under the secret key -----------------------

    def collect_pairs(
        self, key: Sequence[int], n_pairs: int, rng=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Chosen-plaintext pairs encrypted for ``attack_rounds`` rounds."""
        generator = make_rng(rng) if rng is not None else derive_rng(
            self._rng, "pairs"
        )
        pts = generator.integers(0, 1 << 16, size=(n_pairs, 2), dtype=np.uint16)
        partners = pts.copy()
        partners[:, 0] ^= np.uint16((self.delta >> 16) & 0xFFFF)
        partners[:, 1] ^= np.uint16(self.delta & 0xFFFF)
        keys = np.tile(np.asarray(key, dtype=np.uint16), (n_pairs, 1))
        c0 = encrypt_batch(pts, keys, self.attack_rounds)
        c1 = encrypt_batch(partners, keys, self.attack_rounds)
        return c0, c1

    @staticmethod
    def last_round_key(key: Sequence[int], rounds: int) -> int:
        """The true final-round subkey (ground truth for evaluation)."""
        schedule = expand_key_batch(
            np.asarray(key, dtype=np.uint16)[np.newaxis, :], rounds
        )
        return int(schedule[0, -1])

    # -- phase 3: guess, peel, score ------------------------------------------

    def score_candidates(
        self,
        c0: np.ndarray,
        c1: np.ndarray,
        candidates: np.ndarray,
        chunk: int = 1 << 18,
    ) -> np.ndarray:
        """Mean real-class probability per candidate subkey."""
        if not self._trained:
            raise DistinguisherError(
                "train the distinguisher before scoring candidates"
            )
        cands = np.asarray(candidates, dtype=np.uint16)
        n = c0.shape[0]
        scores = np.empty(len(cands), dtype=np.float64)
        per_chunk = max(1, chunk // max(1, n))
        for begin in range(0, len(cands), per_chunk):
            block = cands[begin:begin + per_chunk]
            m = len(block)
            keys = np.repeat(block, n)
            d0 = decrypt_last_round(np.tile(c0, (m, 1)), keys)
            d1 = decrypt_last_round(np.tile(c1, (m, 1)), keys)
            pairs = np.concatenate([d0, d1], axis=1)
            features = state_to_bits(pairs, WORD_BITS)
            probs = self.model.predict(features)[:, 1]
            scores[begin:begin + per_chunk] = probs.reshape(m, n).mean(axis=1)
        return scores

    def recover(
        self,
        c0: np.ndarray,
        c1: np.ndarray,
        candidate_bits: int = 16,
        known_high_bits: int = 0,
        true_key: Optional[int] = None,
    ) -> RecoveryResult:
        """Rank candidate last-round subkeys.

        ``candidate_bits`` low bits are swept (``2^candidate_bits``
        candidates); the remaining high bits are fixed to those of
        ``known_high_bits``.
        """
        if not 1 <= candidate_bits <= WORD_BITS:
            raise DistinguisherError(
                f"candidate_bits must be in [1, {WORD_BITS}], got {candidate_bits}"
            )
        low = np.arange(1 << candidate_bits, dtype=np.uint32)
        high_mask = ((1 << WORD_BITS) - 1) ^ ((1 << candidate_bits) - 1)
        candidates = (low | (known_high_bits & high_mask)).astype(np.uint16)
        scores = self.score_candidates(c0, c1, candidates)
        order = np.argsort(scores)[::-1]
        return RecoveryResult(
            candidates=candidates[order],
            scores=scores[order],
            true_key=true_key,
        )

    def attack(
        self,
        secret_key: Sequence[int],
        n_pairs: int = 256,
        candidate_bits: int = 16,
        rng=None,
    ) -> RecoveryResult:
        """End-to-end attack against a fresh secret key.

        Collects pairs under ``secret_key``, sweeps the candidate space
        (high bits, if not swept, are taken from the true subkey — the
        partial-sweep evaluation convention), and returns the ranking
        with the ground truth recorded.
        """
        truth = self.last_round_key(secret_key, self.attack_rounds)
        c0, c1 = self.collect_pairs(secret_key, n_pairs, rng=rng)
        return self.recover(
            c0,
            c1,
            candidate_bits=candidate_bits,
            known_high_bits=truth,
            true_key=truth,
        )
