"""Span-based tracing with Chrome-trace export.

A *span* is a named, timed region of code::

    from repro.obs.trace import span

    with span("train.epoch", epoch=3):
        ...

Spans nest (each thread keeps its own stack, so the recorded spans
carry their parent's name and depth), time with the monotonic
``perf_counter`` clock, and are collected into a bounded process-wide
buffer under a lock.  When tracing is disabled — the default —
``span()`` returns one shared no-op context manager, so the cost on an
instrumented hot path is a single module-flag test.

``REPRO_TRACE=<path>`` enables tracing at import and registers an
``atexit`` dump of the collected spans in Chrome trace-event format
(open the file in ``chrome://tracing`` or Perfetto).  The values ``1``
and ``true`` select the default path ``repro_trace.json``.
Programmatic control: :func:`enable`, :func:`disable`, :func:`dump`,
:func:`drain`.

Worker processes (``repro.core.parallel``) inherit the flag but keep
their own buffers; spans opened inside pool workers are not merged
back into the parent — per-cell spans for the run manifest come from
the parent-side serial path or from the runners themselves.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ReproError

TRACE_ENV_VAR = "REPRO_TRACE"
DEFAULT_TRACE_PATH = "repro_trace.json"

#: Collection cap: a runaway loop cannot grow the buffer unboundedly.
MAX_SPANS = 200_000

_lock = threading.Lock()
_enabled = False
_trace_path: Optional[str] = None
_finished: List[dict] = []
_dropped = 0
_origin = time.perf_counter()
_tls = threading.local()


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "start", "parent", "depth")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.parent: Optional[str] = None
        self.depth = 0

    def __enter__(self) -> "_Span":
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        stack = getattr(_tls, "stack", [])
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "name": self.name,
            "start_us": (self.start - _origin) * 1e6,
            "dur_us": (end - self.start) * 1e6,
            "thread": threading.get_ident(),
            "parent": self.parent,
            "depth": self.depth,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        global _dropped
        with _lock:
            if len(_finished) < MAX_SPANS:
                _finished.append(record)
            else:
                _dropped += 1
        return False  # never swallow the exception


def span(name: str, **attrs):
    """A context manager timing the enclosed region (no-op if disabled)."""
    if not _enabled:
        return _NOOP
    return _Span(name, attrs)


def is_enabled() -> bool:
    """Whether spans are currently being collected."""
    return _enabled


def enable(path: Optional[str] = None) -> None:
    """Start collecting spans; ``path`` sets the :func:`dump` default."""
    global _enabled, _trace_path
    _enabled = True
    if path is not None:
        _trace_path = path


def disable() -> None:
    """Stop collecting spans (already-collected spans are kept)."""
    global _enabled
    _enabled = False


def finished_spans() -> List[dict]:
    """A snapshot of every span collected so far (oldest first)."""
    with _lock:
        return list(_finished)


def drain() -> List[dict]:
    """Remove and return every collected span."""
    global _dropped
    with _lock:
        spans, _finished[:] = list(_finished), []
        _dropped = 0
        return spans


def dropped_spans() -> int:
    """Spans discarded because the buffer hit :data:`MAX_SPANS`."""
    with _lock:
        return _dropped


def chrome_trace(spans: Optional[List[dict]] = None) -> Dict:
    """The spans as a Chrome trace-event JSON object (``ph: "X"`` events)."""
    if spans is None:
        spans = finished_spans()
    pid = os.getpid()
    events = [
        {
            "name": record["name"],
            "cat": "repro",
            "ph": "X",
            "ts": record["start_us"],
            "dur": record["dur_us"],
            "pid": pid,
            "tid": record["thread"],
            "args": record.get("attrs", {}),
        }
        for record in spans
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump(path: Optional[str] = None) -> str:
    """Write the collected spans as Chrome trace JSON; returns the path."""
    target = path or _trace_path
    if not target:
        raise ReproError(
            "no trace path: pass one, or set REPRO_TRACE / enable(path=...)"
        )
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(), handle)
    return target


def _dump_at_exit() -> None:
    if _enabled and _trace_path and finished_spans():
        dump()


_env = os.environ.get(TRACE_ENV_VAR, "")
if _env:
    enable(DEFAULT_TRACE_PATH if _env.lower() in ("1", "true") else _env)
    atexit.register(_dump_at_exit)
