"""ToySpeck: a 16-bit-block ARX toy in the SPECK round shape.

Gohr's CRYPTO'19 comparison between neural distinguishers and the exact
all-in-one differential needs the *entire* difference distribution of
the cipher, which for SPECK-32/64 takes tens of gigabytes of optimised C
(see DESIGN.md).  ToySpeck scales the block down to 16 bits (two 8-bit
words, rotations ``(3, 1)``, SPECK-style Feistel-ARX round and key
schedule) so the exact all-in-one distribution is computable by direct
enumeration in numpy, preserving the methodological comparison: exact
all-in-one accuracy vs machine-learned accuracy on the same cipher.

This is our own construction (documented substitution), not a member of
the SPECK family.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ciphers.base import BlockCipher
from repro.errors import CipherError, ShapeError

WORD_BITS = 8
_MASK = 0xFF
ALPHA = 3
BETA = 1
FULL_ROUNDS = 16
KEY_WORDS = 4
BLOCK_BITS = 16


def _rotl(value: int, amount: int) -> int:
    amount %= WORD_BITS
    return ((value << amount) | (value >> (WORD_BITS - amount))) & _MASK


def _rotr(value: int, amount: int) -> int:
    return _rotl(value, WORD_BITS - amount)


def expand_key(key: Sequence[int], rounds: int) -> List[int]:
    """SPECK-style key schedule on 8-bit words."""
    if len(key) != KEY_WORDS:
        raise CipherError(f"ToySpeck key must have {KEY_WORDS} words")
    l_words = [int(key[2]) & _MASK, int(key[1]) & _MASK, int(key[0]) & _MASK]
    k_words = [int(key[3]) & _MASK]
    for i in range(rounds - 1):
        l_words.append(((k_words[i] + _rotr(l_words[i], ALPHA)) & _MASK) ^ (i & _MASK))
        k_words.append(_rotl(k_words[i], BETA) ^ l_words[i + KEY_WORDS - 1])
    return k_words


def encrypt_block(
    plaintext: Tuple[int, int], key: Sequence[int], rounds: int = FULL_ROUNDS
) -> Tuple[int, int]:
    """Scalar reference encryption of one ``(x, y)`` byte pair."""
    x, y = int(plaintext[0]) & _MASK, int(plaintext[1]) & _MASK
    for k in expand_key(key, rounds):
        x = ((_rotr(x, ALPHA) + y) & _MASK) ^ k
        y = _rotl(y, BETA) ^ x
    return x, y


def _rotl_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    amount %= WORD_BITS
    return ((arr << np.uint8(amount)) | (arr >> np.uint8(WORD_BITS - amount))).astype(
        np.uint8
    )


def _rotr_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    return _rotl_arr(arr, WORD_BITS - amount)


def expand_key_batch(keys: np.ndarray, rounds: int) -> np.ndarray:
    """Vectorised key schedule: ``(n, 4)`` uint8 keys to ``(n, rounds)``."""
    arr = np.asarray(keys, dtype=np.uint8)
    if arr.ndim != 2 or arr.shape[1] != KEY_WORDS:
        raise ShapeError(f"expected (n, {KEY_WORDS}) keys, got shape {arr.shape}")
    l_words = [arr[:, 2].copy(), arr[:, 1].copy(), arr[:, 0].copy()]
    round_keys = np.empty((arr.shape[0], rounds), dtype=np.uint8)
    round_keys[:, 0] = arr[:, 3]
    for i in range(rounds - 1):
        new_l = (round_keys[:, i] + _rotr_arr(l_words[i], ALPHA)) ^ np.uint8(i & _MASK)
        l_words.append(new_l.astype(np.uint8))
        round_keys[:, i + 1] = _rotl_arr(round_keys[:, i], BETA) ^ l_words[-1]
    return round_keys


def encrypt_batch(
    plaintexts: np.ndarray, keys: np.ndarray, rounds: int = FULL_ROUNDS
) -> np.ndarray:
    """Vectorised encryption of ``(n, 2)`` uint8 blocks with ``(n, 4)`` keys."""
    pts = np.asarray(plaintexts, dtype=np.uint8)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ShapeError(f"expected (n, 2) plaintexts, got shape {pts.shape}")
    round_keys = expand_key_batch(keys, rounds)
    if round_keys.shape[0] != pts.shape[0]:
        raise ShapeError("plaintext and key batch sizes differ")
    x = pts[:, 0].copy()
    y = pts[:, 1].copy()
    for r in range(rounds):
        x = (_rotr_arr(x, ALPHA) + y).astype(np.uint8) ^ round_keys[:, r]
        y = _rotl_arr(y, BETA) ^ x
    return np.stack([x, y], axis=1)


def round_difference_kernel(delta: int) -> np.ndarray:
    """Exact one-round output-difference distribution for input diff ``delta``.

    Because the round key enters by XOR, the XOR-difference transition
    of one round is key-independent; enumerating all ``2^16`` input
    values gives the exact distribution.  Returns a length-``2^16``
    probability vector indexed by ``(dx << 8) | dy``.

    This kernel is the building block of the exact all-in-one baseline
    in :mod:`repro.diffcrypt.allinone`.
    """
    if not 0 <= delta < 1 << BLOCK_BITS:
        raise CipherError(f"difference must fit in {BLOCK_BITS} bits, got {delta}")
    values = np.arange(1 << BLOCK_BITS, dtype=np.uint32)
    x = (values >> np.uint32(8)).astype(np.uint8)
    y = (values & np.uint32(0xFF)).astype(np.uint8)
    dx = np.uint8((delta >> 8) & _MASK)
    dy = np.uint8(delta & _MASK)

    def half_round(xv: np.ndarray, yv: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        new_x = (_rotr_arr(xv, ALPHA) + yv).astype(np.uint8)
        new_y = _rotl_arr(yv, BETA) ^ new_x
        return new_x, new_y

    x0, y0 = half_round(x, y)
    x1, y1 = half_round(x ^ dx, y ^ dy)
    out = ((x0 ^ x1).astype(np.uint32) << np.uint32(8)) | (y0 ^ y1).astype(np.uint32)
    counts = np.bincount(out, minlength=1 << BLOCK_BITS)
    return counts.astype(np.float64) / float(1 << BLOCK_BITS)


class ToySpeck(BlockCipher):
    """ToySpeck as a :class:`BlockCipher` (optionally round-reduced)."""

    block_words = 2
    key_words = KEY_WORDS
    word_width = WORD_BITS

    def __init__(self, rounds: int = FULL_ROUNDS):
        if rounds > FULL_ROUNDS:
            raise CipherError(f"ToySpeck has {FULL_ROUNDS} rounds, requested {rounds}")
        super().__init__(rounds)

    def encrypt(self, plaintexts: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return encrypt_batch(plaintexts, keys, self.rounds)
