"""Gimli-Cipher: the Monkey-Duplex AEAD over Gimli (paper Fig. 3).

Parameters follow the NIST LWC submission: 32-byte key, 16-byte nonce,
16-byte tag.  The state is initialised to ``nonce || key`` and permuted;
associated data and message are absorbed in 16-byte blocks with the same
``0x01`` / ``0x01`` padding as Gimli-Hash; each message block's
ciphertext is the rate *after* XORing the plaintext in.

For the paper's distinguisher (§4) the relevant computation is the
pipeline from nonce injection to the first ciphertext block ``c0`` with
one (empty, padded) associated-data block and ``m0 = 0``.  The paper
reduces "the 48 rounds [of the two permutation calls] to 8 rounds"; we
read that as a *total* round budget split ``ceil(R/2)`` / ``floor(R/2)``
over the two calls (documented in DESIGN.md), implemented by
:func:`gimli_aead_reduced_c0_batch`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ciphers.gimli import GIMLI_ROUNDS, gimli_permute_batch
from repro.ciphers.gimli_hash import (
    RATE_BYTES,
    STATE_BYTES,
    _extract_state_bytes,
    _xor_bytes_into_state,
)
from repro.errors import CipherError

KEY_BYTES = 32
NONCE_BYTES = 16
TAG_BYTES = 16


def _init_state(key: bytes, nonce: bytes) -> np.ndarray:
    if len(key) != KEY_BYTES:
        raise CipherError(f"Gimli-Cipher key must be {KEY_BYTES} bytes, got {len(key)}")
    if len(nonce) != NONCE_BYTES:
        raise CipherError(
            f"Gimli-Cipher nonce must be {NONCE_BYTES} bytes, got {len(nonce)}"
        )
    state = np.zeros(12, dtype=np.uint32)
    _xor_bytes_into_state(state, nonce, offset=0)
    _xor_bytes_into_state(state, key, offset=NONCE_BYTES)
    return state


def _absorb(state: np.ndarray, data: bytes, rounds: int) -> np.ndarray:
    """Absorb ``data`` (with final-block padding) into the duplex state."""
    remaining = data
    while len(remaining) >= RATE_BYTES:
        _xor_bytes_into_state(state, remaining[:RATE_BYTES])
        state = gimli_permute_batch(state, rounds)
        remaining = remaining[RATE_BYTES:]
    _xor_bytes_into_state(state, remaining)
    _xor_bytes_into_state(state, b"\x01", offset=len(remaining))
    _xor_bytes_into_state(state, b"\x01", offset=STATE_BYTES - 1)
    return gimli_permute_batch(state, rounds)


def gimli_aead_encrypt(
    message: bytes,
    associated_data: bytes,
    nonce: bytes,
    key: bytes,
    rounds: int = GIMLI_ROUNDS,
) -> Tuple[bytes, bytes]:
    """Encrypt; returns ``(ciphertext, tag)``.

    ``rounds`` reduces every permutation call (full Gimli by default).
    """
    state = _init_state(key, nonce)
    state = gimli_permute_batch(state, rounds)
    state = _absorb(state, associated_data, rounds)

    ciphertext = b""
    remaining = message
    while len(remaining) >= RATE_BYTES:
        _xor_bytes_into_state(state, remaining[:RATE_BYTES])
        ciphertext += _extract_state_bytes(state, RATE_BYTES)
        state = gimli_permute_batch(state, rounds)
        remaining = remaining[RATE_BYTES:]
    _xor_bytes_into_state(state, remaining)
    ciphertext += _extract_state_bytes(state, len(remaining))
    _xor_bytes_into_state(state, b"\x01", offset=len(remaining))
    _xor_bytes_into_state(state, b"\x01", offset=STATE_BYTES - 1)
    state = gimli_permute_batch(state, rounds)
    tag = _extract_state_bytes(state, TAG_BYTES)
    return ciphertext, tag


def gimli_aead_decrypt(
    ciphertext: bytes,
    tag: bytes,
    associated_data: bytes,
    nonce: bytes,
    key: bytes,
    rounds: int = GIMLI_ROUNDS,
) -> Optional[bytes]:
    """Decrypt and verify; returns the plaintext or ``None`` on a bad tag."""
    state = _init_state(key, nonce)
    state = gimli_permute_batch(state, rounds)
    state = _absorb(state, associated_data, rounds)

    message = b""
    remaining = ciphertext
    while len(remaining) >= RATE_BYTES:
        block = remaining[:RATE_BYTES]
        rate = _extract_state_bytes(state, RATE_BYTES)
        message += bytes(a ^ b for a, b in zip(block, rate))
        # Overwrite the rate with the ciphertext block.
        _xor_bytes_into_state(state, rate)
        _xor_bytes_into_state(state, block)
        state = gimli_permute_batch(state, rounds)
        remaining = remaining[RATE_BYTES:]
    rate = _extract_state_bytes(state, len(remaining))
    final = bytes(a ^ b for a, b in zip(remaining, rate))
    message += final
    _xor_bytes_into_state(state, final)
    _xor_bytes_into_state(state, b"\x01", offset=len(remaining))
    _xor_bytes_into_state(state, b"\x01", offset=STATE_BYTES - 1)
    state = gimli_permute_batch(state, rounds)
    expected = _extract_state_bytes(state, TAG_BYTES)
    if not _constant_time_equal(expected, tag):
        return None
    return message


def _constant_time_equal(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


def split_round_budget(total_rounds: int) -> Tuple[int, int]:
    """Split a total round budget over the two pre-``c0`` permutations.

    Returns ``(ceil(R/2), floor(R/2))`` — the initialisation call gets
    the extra round when ``R`` is odd.
    """
    if total_rounds < 0:
        raise CipherError(f"round budget must be non-negative, got {total_rounds}")
    first = (total_rounds + 1) // 2
    return first, total_rounds - first


def gimli_aead_reduced_c0_batch(
    nonces: np.ndarray, keys: np.ndarray, total_rounds: int
) -> np.ndarray:
    """Batched first-ciphertext-block pipeline of round-reduced Gimli-Cipher.

    Implements the paper's §4 target: ``state = nonce || key``,
    permutation #1, empty padded associated-data block, permutation #2,
    then ``c0 = rate`` (the first message block is zero).  The two
    permutation calls share ``total_rounds`` rounds via
    :func:`split_round_budget`.

    ``nonces`` is ``(n, 4)`` uint32, ``keys`` is ``(n, 8)`` uint32;
    returns ``c0`` as ``(n, 4)`` uint32.
    """
    nonce_arr = np.asarray(nonces, dtype=np.uint32)
    key_arr = np.asarray(keys, dtype=np.uint32)
    if nonce_arr.ndim != 2 or nonce_arr.shape[1] != 4:
        raise CipherError(f"expected (n, 4) nonces, got shape {nonce_arr.shape}")
    if key_arr.shape != (nonce_arr.shape[0], 8):
        raise CipherError(
            f"expected ({nonce_arr.shape[0]}, 8) keys, got shape {key_arr.shape}"
        )
    rounds_init, rounds_ad = split_round_budget(total_rounds)
    states = np.concatenate([nonce_arr, key_arr], axis=1).astype(np.uint32)
    states = gimli_permute_batch(states, rounds_init)
    # Empty associated-data block: padding byte at offset 0, domain byte 47.
    states = states.copy()
    states[:, 0] ^= np.uint32(1)
    states[:, 11] ^= np.uint32(1) << np.uint32(24)
    states = gimli_permute_batch(states, rounds_ad)
    return states[:, 0:4]


class GimliAead:
    """Object wrapper for Gimli-Cipher with a fixed key and round count."""

    def __init__(self, key: bytes, rounds: int = GIMLI_ROUNDS):
        if len(key) != KEY_BYTES:
            raise CipherError(f"key must be {KEY_BYTES} bytes, got {len(key)}")
        if not 0 <= rounds <= GIMLI_ROUNDS:
            raise CipherError(f"rounds must be in [0, {GIMLI_ROUNDS}], got {rounds}")
        self._key = key
        self.rounds = rounds

    def encrypt(
        self, message: bytes, nonce: bytes, associated_data: bytes = b""
    ) -> Tuple[bytes, bytes]:
        """Encrypt ``message``; returns ``(ciphertext, tag)``."""
        return gimli_aead_encrypt(
            message, associated_data, nonce, self._key, self.rounds
        )

    def decrypt(
        self, ciphertext: bytes, tag: bytes, nonce: bytes, associated_data: bytes = b""
    ) -> Optional[bytes]:
        """Decrypt and verify; ``None`` signals an authentication failure."""
        return gimli_aead_decrypt(
            ciphertext, tag, associated_data, nonce, self._key, self.rounds
        )
