"""``REPRO_PROFILE=1``: per-layer forward/backward timing inside ``fit``.

When enabled, :meth:`repro.nn.model.Sequential.fit` creates one
:class:`LayerProfiler` for the run; the forward/backward loops time
each layer call against ``perf_counter`` and the profiler aggregates
(calls, total seconds) per ``(layer index, phase)``.  At the end of
``fit`` the model prints :meth:`LayerProfiler.format_table` and keeps
the raw numbers on ``model.last_profile``.

Profiling is single-threaded (it lives inside one ``fit`` call), adds
two clock reads per layer call when on, and exactly one attribute test
per ``forward``/``backward`` when off.  It never touches an RNG
stream, so profiled training is bit-identical to unprofiled training.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

PROFILE_ENV_VAR = "REPRO_PROFILE"


def enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for per-layer timing."""
    return os.environ.get(PROFILE_ENV_VAR, "") not in ("", "0")


class LayerProfiler:
    """Aggregates per-layer, per-phase wall time for one training run."""

    __slots__ = ("_stats",)

    def __init__(self):
        # (index, layer name, phase) -> [calls, total seconds]
        self._stats: Dict[Tuple[int, str, str], List[float]] = {}

    def record(self, index: int, name: str, phase: str, seconds: float) -> None:
        entry = self._stats.get((index, name, phase))
        if entry is None:
            self._stats[(index, name, phase)] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def stats(self) -> List[dict]:
        """Per-(layer, phase) rows sorted by layer index then phase."""
        return [
            {
                "layer": index,
                "name": name,
                "phase": phase,
                "calls": int(calls),
                "total_s": total,
                "mean_us": 1e6 * total / calls if calls else 0.0,
            }
            for (index, name, phase), (calls, total) in sorted(
                self._stats.items()
            )
        ]

    def total_seconds(self) -> float:
        """Summed wall time across every recorded layer call."""
        return sum(total for _, total in self._stats.values())

    def format_table(self) -> str:
        """A human-readable per-layer timing table."""
        rows = self.stats()
        lines = [
            f"{'Layer':<6}{'Name':<16}{'Phase':<10}{'Calls':>8}"
            f"{'Total (s)':>12}{'Mean (us)':>12}"
        ]
        for row in rows:
            lines.append(
                f"{row['layer']:<6}{row['name']:<16}{row['phase']:<10}"
                f"{row['calls']:>8}{row['total_s']:>12.4f}{row['mean_us']:>12.1f}"
            )
        lines.append(f"Profiled layer time: {self.total_seconds():.4f}s")
        return "\n".join(lines)
