"""Tests for the float32/float64 compute-dtype policy.

The policy promise: ``compile(..., dtype="float32")`` switches every
parameter, activation, gradient and optimizer buffer to float32 — and a
float32 run is not a degraded run: on a learnable scenario it reaches
the same distinguisher verdict as float64.
"""

import numpy as np
import pytest

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import ToySpeckScenario
from repro.errors import LayerError, TrainingError
from repro.nn.blocks import gohr_resnet
from repro.nn.layers import Dense, Dropout, ReLU, Softmax
from repro.nn.losses import one_hot
from repro.nn.model import Sequential
from repro.nn.recurrent import LSTM


def _compiled(dtype=None, layers=None):
    model = Sequential(layers or [Dense(16), ReLU(), Dense(2), Softmax()])
    model.build((8,), rng=0)
    model.compile(dtype=dtype)
    return model


class TestDtypePropagation:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_params_and_grads_follow_policy(self, dtype):
        model = _compiled(dtype=dtype)
        expected = np.dtype(dtype)
        params, grads = model._gather()
        assert params and all(p.dtype == expected for p in params)
        assert all(g.dtype == expected for g in grads)

    def test_default_stays_float64(self):
        model = _compiled()
        assert model.dtype == np.float64
        assert all(p.dtype == np.float64 for p in model._gather()[0])

    def test_forward_output_dtype(self):
        model = _compiled(dtype="float32")
        out = model.forward(np.zeros((4, 8)))
        assert out.dtype == np.float32

    def test_training_preserves_dtype(self):
        model = _compiled(dtype="float32")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 8))
        y = one_hot(rng.integers(0, 2, 32), 2)
        model.fit(x, y, epochs=2, batch_size=8, rng=1)
        assert all(p.dtype == np.float32 for p in model._gather()[0])
        assert all(g.dtype == np.float32 for g in model._gather()[1])

    def test_dropout_mask_does_not_upcast(self):
        model = _compiled(
            dtype="float32",
            layers=[Dense(16), ReLU(), Dropout(0.5), Dense(2), Softmax()],
        )
        out = model.forward(np.zeros((4, 8)), training=True, rng=0)
        assert out.dtype == np.float32

    def test_lstm_states_follow_dtype(self):
        model = Sequential([LSTM(8), Dense(2), Softmax()])
        model.build((4, 6), rng=0)
        model.compile(dtype="float32")
        out = model.forward(np.zeros((3, 4, 6)), training=True)
        assert out.dtype == np.float32

    def test_residual_tower_follows_dtype(self):
        model = gohr_resnet(depth=1, filters=4, dense_units=8)
        model.build((64,), rng=0)
        model.compile(dtype="float32")
        assert all(p.dtype == np.float32 for p in model._gather()[0])
        out = model.forward(np.zeros((2, 64)), training=True)
        assert out.dtype == np.float32

    def test_rejects_non_float_dtype(self):
        model = Sequential([Dense(2)])
        with pytest.raises(TrainingError):
            model.set_dtype("int32")
        layer = Dense(2)
        with pytest.raises(LayerError):
            layer.set_dtype(np.int64)

    def test_save_load_roundtrip_keeps_dtype(self, tmp_path):
        model = _compiled(dtype="float32")
        path = str(tmp_path / "model.npz")
        model.save(path)
        loaded = Sequential.load(path)
        assert loaded.dtype == np.float32
        assert all(p.dtype == np.float32 for p in loaded._gather()[0])
        x = np.random.default_rng(3).normal(size=(5, 8))
        np.testing.assert_allclose(model.predict(x), loaded.predict(x))


class TestFloat32Parity:
    def test_float32_reaches_same_verdict_on_toyspeck(self):
        """The acceptance test: a float32 distinguisher on 3-round
        ToySpeck trains past the 1/t abort gate and returns the same
        online verdicts as its float64 twin."""
        results = {}
        for dtype in ("float64", "float32"):
            scenario = ToySpeckScenario(rounds=3)
            distinguisher = MLDistinguisher(
                scenario, epochs=3, batch_size=128, rng=17, dtype=dtype
            )
            report = distinguisher.train(num_samples=4000)
            assert not report.aborted
            assert report.validation_accuracy > report.baseline
            cipher = distinguisher.test(scenario.cipher_oracle(), 1000, rng=3)
            random = distinguisher.test(
                scenario.random_oracle(rng=8, memoize=False), 1000, rng=4
            )
            assert distinguisher.model.dtype == np.dtype(dtype)
            results[dtype] = (cipher.verdict, random.verdict)
        assert results["float32"] == results["float64"] == ("CIPHER", "RANDOM")

    def test_float32_close_to_float64_on_one_batch(self):
        """One fused training step in float32 tracks float64 to ~1e-3."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(64, 8))
        y = one_hot(rng.integers(0, 2, 64), 2)
        updated = {}
        for dtype in ("float64", "float32"):
            model = _compiled(dtype=dtype)
            model.train_on_batch(x.astype(dtype), y.astype(dtype))
            updated[dtype] = [p.copy() for p in model._gather()[0]]
        for p64, p32 in zip(updated["float64"], updated["float32"]):
            np.testing.assert_allclose(p64, p32.astype(np.float64), atol=2e-3)
