"""Benchmark: regenerate Table 2 (Gimli-Hash / Gimli-Cipher accuracies).

Trains the distinguisher for 6/7/8 rounds of both targets at
``REPRO_SCALE`` of the paper's 2^17.6 samples, then runs the online
phase against a cipher and a random oracle.  Shape assertions: accuracy
decreases with rounds, stays above 1/2 at 8 rounds, and the online
verdicts are correct.

Set ``REPRO_SCALE=1.0`` for the paper's full data budget (minutes of
CPU time per row).
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.table2 import run_table2


def test_table2(benchmark):
    result = run_once(benchmark, run_table2, rounds=(6, 7, 8), rng=7)
    rows = [
        [row["target"], row["rounds"], row["paper"], row["measured"],
         row.get("cipher_verdict", "-"), row.get("random_verdict", "-")]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["target", "rounds", "paper acc", "measured acc",
         "cipher oracle", "random oracle"],
        rows,
        title=(
            f"Table 2 (neural distinguisher accuracy; "
            f"{result['offline_samples']} offline samples, "
            f"{result['epochs']} epochs)"
        ),
    ))
    by_key = {(r["target"], r["rounds"]): r for r in result["rows"]}
    for target in ("hash", "cipher"):
        acc6 = by_key[(target, 6)]["measured"]
        acc7 = by_key[(target, 7)]["measured"]
        acc8 = by_key[(target, 8)]["measured"]
        # Monotone decay toward 1/2, as in the paper.
        assert acc6 > acc7 > acc8 - 0.02, (target, acc6, acc7, acc8)
        # 6 rounds is a strong distinguisher.
        assert acc6 > 0.80
        # 8 rounds still (just) beats random, the paper's headline.
        assert acc8 > 0.503
        # Online phase reaches the right verdicts at 6-7 rounds.
        for rounds in (6, 7):
            row = by_key[(target, rounds)]
            assert row["cipher_verdict"] == "CIPHER"
            assert row["random_verdict"] == "RANDOM"
