"""Tests for Gimli-Hash: sponge mode, padding, batched absorb."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.gimli_hash import (
    DIGEST_BYTES,
    RATE_BYTES,
    GimliHash,
    absorb_final_block_batch,
    gimli_hash,
    pack_message_blocks,
)
from repro.errors import CipherError


class TestGimliHashFunction:
    def test_digest_length(self):
        assert len(gimli_hash(b"")) == DIGEST_BYTES

    def test_deterministic(self):
        assert gimli_hash(b"abc") == gimli_hash(b"abc")

    def test_different_messages_differ(self):
        assert gimli_hash(b"abc") != gimli_hash(b"abd")

    def test_padding_distinguishes_lengths(self):
        # A message and the same message + zero byte must hash differently.
        assert gimli_hash(b"\x00" * 5) != gimli_hash(b"\x00" * 6)

    def test_block_boundary(self):
        # 15, 16 and 17 bytes exercise final-block edge cases.
        digests = {gimli_hash(b"A" * n) for n in (15, 16, 17)}
        assert len(digests) == 3

    def test_multiblock(self):
        long = bytes(range(256)) * 2
        assert len(gimli_hash(long)) == DIGEST_BYTES

    def test_round_reduction_changes_digest(self):
        assert gimli_hash(b"msg", rounds=8) != gimli_hash(b"msg", rounds=24)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=100))
    def test_arbitrary_messages(self, message):
        digest = gimli_hash(message)
        assert len(digest) == DIGEST_BYTES
        assert digest == gimli_hash(message)


class TestIncremental:
    def test_matches_one_shot(self):
        msg = b"incremental hashing should match the one-shot function"
        assert GimliHash().update(msg).digest() == gimli_hash(msg)

    def test_split_points_irrelevant(self):
        msg = bytes(range(100))
        for split in (0, 1, 15, 16, 17, 99):
            h = GimliHash().update(msg[:split]).update(msg[split:])
            assert h.digest() == gimli_hash(msg)

    def test_digest_idempotent(self):
        h = GimliHash().update(b"x")
        assert h.digest() == h.digest()

    def test_update_after_digest_raises(self):
        h = GimliHash()
        h.digest()
        with pytest.raises(CipherError):
            h.update(b"more")

    def test_hexdigest(self):
        h = GimliHash().update(b"q")
        assert h.hexdigest() == h.digest().hex()

    def test_invalid_rounds(self):
        with pytest.raises(CipherError):
            GimliHash(rounds=25)


class TestBatchedAbsorb:
    def test_matches_reference_first_squeeze(self, rng):
        msgs = rng.integers(0, 256, size=(8, 15), dtype=np.uint8)
        blocks = pack_message_blocks(msgs, 15)
        rates = absorb_final_block_batch(blocks, 15, rounds=24)
        for i in range(8):
            expected = gimli_hash(msgs[i].tobytes())[:RATE_BYTES]
            got = b"".join(struct.pack("<I", int(w)) for w in rates[i])
            assert got == expected

    def test_shorter_block(self, rng):
        msgs = rng.integers(0, 256, size=(4, 7), dtype=np.uint8)
        blocks = pack_message_blocks(msgs, 7)
        rates = absorb_final_block_batch(blocks, 7, rounds=24)
        for i in range(4):
            expected = gimli_hash(msgs[i].tobytes())[:RATE_BYTES]
            got = b"".join(struct.pack("<I", int(w)) for w in rates[i])
            assert got == expected

    def test_invalid_block_len(self):
        blocks = np.zeros((1, 4), dtype=np.uint32)
        with pytest.raises(CipherError):
            absorb_final_block_batch(blocks, 16)
        with pytest.raises(CipherError):
            absorb_final_block_batch(blocks, -1)

    def test_invalid_shapes(self):
        with pytest.raises(CipherError):
            absorb_final_block_batch(np.zeros((2, 3), dtype=np.uint32), 15)
        with pytest.raises(CipherError):
            absorb_final_block_batch(
                np.zeros((2, 4), dtype=np.uint32),
                15,
                initial_states=np.zeros((3, 12), dtype=np.uint32),
            )

    def test_initial_state_respected(self, rng):
        blocks = pack_message_blocks(
            rng.integers(0, 256, size=(2, 15), dtype=np.uint8), 15
        )
        zero = absorb_final_block_batch(blocks, 15, rounds=8)
        init = rng.integers(0, 2**32, size=(2, 12), dtype=np.uint64).astype(
            np.uint32
        )
        nonzero = absorb_final_block_batch(blocks, 15, rounds=8, initial_states=init)
        assert (zero != nonzero).any()

    def test_pack_validates(self, rng):
        with pytest.raises(CipherError):
            pack_message_blocks(rng.integers(0, 256, size=(2, 9), dtype=np.uint8), 8)
