"""Tests for the cipher registry and base-class validation."""

import numpy as np
import pytest

import repro.ciphers  # noqa: F401 - triggers registration
from repro.ciphers.base import (
    BlockCipher,
    Permutation,
    get_cipher,
    register_cipher,
    registered_ciphers,
)
from repro.ciphers.gimli import GimliPermutation
from repro.errors import CipherError, ShapeError


class TestRegistry:
    def test_known_ciphers_present(self):
        names = registered_ciphers()
        for expected in ("gimli", "salsa", "speck32-64", "toyspeck", "gift64"):
            assert expected in names

    def test_get_cipher_constructs(self):
        perm = get_cipher("gimli", rounds=8)
        assert isinstance(perm, GimliPermutation)
        assert perm.rounds == 8

    def test_lookup_case_insensitive(self):
        assert isinstance(get_cipher("GIMLI"), GimliPermutation)

    def test_unknown_name_raises(self):
        with pytest.raises(CipherError):
            get_cipher("nonexistent")

    def test_duplicate_registration_raises(self):
        with pytest.raises(CipherError):
            register_cipher("gimli", GimliPermutation)


class TestPermutationBase:
    def test_negative_rounds(self):
        class Dummy(Permutation):
            state_words = 2
            word_width = 32

            def __call__(self, states):
                return self._check_batch(states)

        with pytest.raises(CipherError):
            Dummy(rounds=-1)

    def test_check_batch_promotes_1d(self):
        class Dummy(Permutation):
            state_words = 3
            word_width = 32

            def __call__(self, states):
                return self._check_batch(states)

        out = Dummy(1)(np.zeros(3, dtype=np.uint32))
        assert out.shape == (1, 3)

    def test_check_batch_rejects_bad_width(self):
        class Dummy(Permutation):
            state_words = 3
            word_width = 32

            def __call__(self, states):
                return self._check_batch(states)

        with pytest.raises(ShapeError):
            Dummy(1)(np.zeros((2, 4), dtype=np.uint32))


class TestBlockCipherBase:
    def test_zero_rounds_rejected(self):
        class Dummy(BlockCipher):
            block_words = 1
            key_words = 1
            word_width = 16

            def encrypt(self, plaintexts, keys):
                return plaintexts

        with pytest.raises(CipherError):
            Dummy(rounds=0)

    def test_block_bits(self):
        class Dummy(BlockCipher):
            block_words = 2
            key_words = 4
            word_width = 16

            def encrypt(self, plaintexts, keys):
                return plaintexts

        assert Dummy(1).block_bits == 32
