"""Conversions between bytes, machine words, bit vectors and NN features.

Conventions
-----------

* Cipher states are numpy arrays of unsigned words.  Batched states add
  a leading sample axis, e.g. Gimli batches are ``(n, 12)`` uint32.
* Byte order within a word is **little-endian**, matching the Gimli and
  SPECK reference implementations.
* Bit features for the neural network are float arrays with one column
  per bit, LSB-first within each word, values in ``{0.0, 1.0}``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.bitops import word_dtype


def bytes_to_words(data: bytes, width: int = 32) -> np.ndarray:
    """Unpack little-endian bytes into an array of ``width``-bit words."""
    dtype = word_dtype(width)
    nbytes = width // 8
    if len(data) % nbytes:
        raise ShapeError(
            f"byte string of length {len(data)} is not a multiple of the "
            f"{nbytes}-byte word size"
        )
    return np.frombuffer(data, dtype=np.dtype(dtype).newbyteorder("<")).astype(dtype)


def words_to_bytes(words: np.ndarray, width: int = 32) -> bytes:
    """Pack an array of ``width``-bit words into little-endian bytes."""
    dtype = word_dtype(width)
    arr = np.asarray(words, dtype=dtype)
    return arr.astype(np.dtype(dtype).newbyteorder("<"), copy=False).tobytes()


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand bytes into a ``{0,1}`` uint8 vector, LSB-first per byte."""
    raw = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits`."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ShapeError(f"expected a 1-D bit vector, got shape {bits.shape}")
    if len(bits) % 8:
        raise ShapeError(f"bit vector length {len(bits)} is not a multiple of 8")
    return np.packbits(bits, bitorder="little").tobytes()


def words_to_bits(words: np.ndarray, width: int = 32) -> np.ndarray:
    """Expand a batch of words into bit columns, LSB-first within each word.

    ``words`` has shape ``(n, w)``; the result has shape ``(n, w * width)``
    and dtype uint8.  Column ``i * width + j`` holds bit ``j`` of word ``i``.
    """
    dtype = word_dtype(width)
    arr = np.asarray(words, dtype=dtype)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    n, w = arr.shape
    as_bytes = arr.astype(np.dtype(dtype).newbyteorder("<"), copy=False)
    flat = np.frombuffer(as_bytes.tobytes(), dtype=np.uint8).reshape(n, w * width // 8)
    return np.unpackbits(flat, axis=1, bitorder="little")


def bits_to_words(bits: np.ndarray, width: int = 32) -> np.ndarray:
    """Inverse of :func:`words_to_bits` for a 2-D bit matrix."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ShapeError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    n, total = bits.shape
    if total % width:
        raise ShapeError(
            f"bit matrix has {total} columns, not a multiple of width {width}"
        )
    packed = np.packbits(bits, axis=1, bitorder="little")
    dtype = word_dtype(width)
    le = np.frombuffer(packed.tobytes(), dtype=np.dtype(dtype).newbyteorder("<"))
    return le.astype(dtype).reshape(n, total // width)


def state_to_bits(states: np.ndarray, width: int = 32) -> np.ndarray:
    """Convert batched cipher states into float32 NN feature matrices.

    This is the paper's pre-processing step: an output difference (a
    batch of word vectors) becomes one ``{0.0, 1.0}`` feature row per
    sample, ready to feed the input layer of the classifier.
    """
    return words_to_bits(states, width).astype(np.float32)


def hex_state(words: np.ndarray) -> str:
    """Render a word vector as space-separated hex (debugging aid)."""
    arr = np.asarray(words).ravel()
    digits = arr.dtype.itemsize * 2
    return " ".join(f"{int(w):0{digits}x}" for w in arr)
