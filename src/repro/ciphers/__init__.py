"""Cipher substrate: every primitive the paper uses or cites.

Each primitive ships two implementations that are cross-checked in the
test suite:

* a *scalar reference* written to read line-for-line like the spec, and
* a *vectorised batch* version on numpy arrays, used to generate the
  hundreds of thousands of differential samples the distinguishers need.
"""

from repro.ciphers.base import BlockCipher, Permutation, get_cipher, register_cipher
from repro.ciphers.gimli import (
    GIMLI_ROUNDS,
    GimliPermutation,
    gimli_permute,
    gimli_permute_batch,
)
from repro.ciphers.gimli_cipher import GimliAead, gimli_aead_encrypt
from repro.ciphers.gimli_hash import GimliHash, gimli_hash
from repro.ciphers.gift import GiftSbox, Gift64
from repro.ciphers.salsa import SalsaPermutation
from repro.ciphers.speck import Speck3264
from repro.ciphers.toygift import ToyGift
from repro.ciphers.toyspeck import ToySpeck
from repro.ciphers.trivium import Trivium

register_cipher("gimli", GimliPermutation)
register_cipher("salsa", SalsaPermutation)
register_cipher("speck32-64", Speck3264)
register_cipher("toyspeck", ToySpeck)
register_cipher("gift64", Gift64)

__all__ = [
    "BlockCipher",
    "GIMLI_ROUNDS",
    "Gift64",
    "GiftSbox",
    "GimliAead",
    "GimliHash",
    "GimliPermutation",
    "Permutation",
    "SalsaPermutation",
    "Speck3264",
    "ToyGift",
    "ToySpeck",
    "Trivium",
    "get_cipher",
    "gimli_aead_encrypt",
    "gimli_hash",
    "gimli_permute",
    "gimli_permute_batch",
    "register_cipher",
]
