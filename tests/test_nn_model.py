"""Tests for the Sequential model: training, evaluation, persistence."""

import os

import numpy as np
import pytest

from repro.errors import LayerError, TrainingError
from repro.nn import (
    Dense,
    EarlyStopping,
    ReLU,
    Sequential,
    Softmax,
    load_model,
)
from repro.nn.model import _layer_class


def make_blob_data(rng, n=400):
    """Two separable Gaussian blobs in 4 dimensions."""
    x0 = rng.normal(loc=-2.0, size=(n // 2, 4))
    x1 = rng.normal(loc=+2.0, size=(n // 2, 4))
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
    order = rng.permutation(n)
    return x[order], y[order]


def make_model():
    return Sequential([Dense(16), ReLU(), Dense(2), Softmax()])


class TestBuildAndParams:
    def test_build_assigns_shapes(self, rng):
        model = make_model().build((4,), rng)
        assert model.count_params() == (4 * 16 + 16) + (16 * 2 + 2)

    def test_summary_mentions_layers(self, rng):
        summary = make_model().build((4,), rng).summary()
        assert "Dense" in summary and "Total params" in summary

    def test_empty_model_rejected(self):
        with pytest.raises(TrainingError):
            Sequential().build((4,))

    def test_add_after_build_rejected(self, rng):
        model = make_model().build((4,), rng)
        with pytest.raises(TrainingError):
            model.add(Dense(3))

    def test_count_before_build_rejected(self):
        with pytest.raises(TrainingError):
            make_model().count_params()


class TestTraining:
    def test_learns_separable_blobs(self, rng):
        x, y = make_blob_data(rng)
        model = make_model().build((4,), rng).compile()
        model.fit(x, y, epochs=10, batch_size=32, rng=rng)
        _, metrics = model.evaluate(x, y)
        assert metrics["accuracy"] > 0.95

    def test_loss_decreases(self, rng):
        x, y = make_blob_data(rng)
        model = make_model().build((4,), rng).compile()
        history = model.fit(x, y, epochs=8, batch_size=32, rng=rng)
        assert history["loss"][-1] < history["loss"][0]

    def test_history_keys(self, rng):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        history = model.fit(x, y, epochs=2, rng=rng, validation_split=0.25)
        for key in ("loss", "accuracy", "val_loss", "val_accuracy", "time"):
            assert key in history

    def test_validation_data(self, rng):
        x, y = make_blob_data(rng, n=128)
        model = make_model().build((4,), rng).compile()
        history = model.fit(
            x[:96], y[:96], epochs=2, validation_data=(x[96:], y[96:]), rng=rng
        )
        assert "val_accuracy" in history

    def test_both_validation_specs_rejected(self, rng):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        with pytest.raises(TrainingError):
            model.fit(
                x, y, validation_split=0.5, validation_data=(x, y), rng=rng
            )

    def test_fit_before_compile_rejected(self, rng):
        x, y = make_blob_data(rng, n=32)
        with pytest.raises(TrainingError):
            make_model().build((4,), rng).fit(x, y)

    def test_onehot_targets_accepted(self, rng):
        x, y = make_blob_data(rng, n=64)
        onehot = np.eye(2)[y]
        model = make_model().build((4,), rng).compile()
        model.fit(x, onehot, epochs=1, rng=rng)

    def test_mismatched_sample_counts(self, rng):
        model = make_model().build((4,), rng).compile()
        with pytest.raises(TrainingError):
            model.fit(np.zeros((4, 4)), np.zeros(5, dtype=int), rng=rng)

    def test_early_stopping(self, rng):
        x, y = make_blob_data(rng)
        model = make_model().build((4,), rng).compile()
        stopper = EarlyStopping(monitor="loss", patience=0, min_delta=10.0)
        history = model.fit(x, y, epochs=20, rng=rng, callbacks=[stopper])
        # min_delta=10 means "never improves" -> stops after epoch 2.
        assert len(history.epochs) == 2

    def test_deterministic_given_seed(self, rng_factory):
        results = []
        for _ in range(2):
            gen = rng_factory(11)
            x, y = make_blob_data(gen, n=64)
            model = make_model().build((4,), rng_factory(5)).compile()
            model.fit(x, y, epochs=2, rng=rng_factory(6))
            results.append(model.predict(x))
        assert np.allclose(results[0], results[1])

    def test_invalid_epochs_and_batch(self, rng):
        x, y = make_blob_data(rng, n=16)
        model = make_model().build((4,), rng).compile()
        with pytest.raises(TrainingError):
            model.fit(x, y, epochs=0, rng=rng)
        with pytest.raises(TrainingError):
            model.fit(x, y, batch_size=0, rng=rng)


class TestInference:
    def test_predict_batched_consistent(self, rng):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        model.fit(x, y, epochs=1, rng=rng)
        assert np.allclose(model.predict(x, batch_size=7), model.predict(x))

    def test_predict_classes(self, rng):
        x, _ = make_blob_data(rng, n=32)
        model = make_model().build((4,), rng).compile()
        classes = model.predict_classes(x)
        assert set(classes).issubset({0, 1})

    def test_evaluate_before_compile(self, rng):
        x, y = make_blob_data(rng, n=16)
        with pytest.raises(TrainingError):
            make_model().build((4,), rng).evaluate(x, y)


class TestPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        model.fit(x, y, epochs=1, rng=rng)
        path = os.path.join(tmp_path, "model.npz")
        model.save(path)
        loaded = load_model(path)
        assert np.allclose(model.predict(x), loaded.predict(x))
        assert loaded.count_params() == model.count_params()

    def test_save_before_build_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            make_model().save(os.path.join(tmp_path, "m.npz"))

    def test_unknown_layer_class(self):
        with pytest.raises(LayerError):
            _layer_class("NotALayer")
