"""Walk through the paper's Figure 1 / §2.1 non-Markov demonstration.

Re-derives, from scratch, every number the paper quotes about the
2-round two-S-box toy cipher: the DDT entries of the GIFT S-box, the
valid input tuples, the exact characteristic probability (2^-6 by
exhaustive enumeration) versus the Markov-assumption product (2^-9,
Eq. 2 of the paper), and a quantitative measurement of how badly the
unkeyed round violates Lai-Massey-Murphy's Definition 2.

Usage::

    python examples/nonmarkov_toy_demo.py
"""

from repro.ciphers.gift import GIFT_SBOX
from repro.ciphers.toygift import PAPER_TRAIL, ToyGift, default_wiring
from repro.diffcrypt.markov import markov_violation_toygift
from repro.diffcrypt.sbox import SBox


def main() -> None:
    sbox = SBox(GIFT_SBOX)
    print("GIFT S-box:", "".join(f"{v:X}" for v in GIFT_SBOX))
    print("differential uniformity:", sbox.differential_uniformity)
    print("branch number          :", sbox.differential_branch_number)

    dy1 = PAPER_TRAIL["delta_y1"]
    dw1 = PAPER_TRAIL["delta_w1"]
    print(f"\ncharacteristic: ΔY1={dy1} -> ΔW1={dw1} -> "
          f"ΔY2={PAPER_TRAIL['delta_y2']} -> ΔW2={PAPER_TRAIL['delta_w2']}")

    print(f"\nDDT[{dy1[0]}][{dw1[0]}] = {sbox.ddt[dy1[0], dw1[0]]} "
          f"(upper S-box), valid inputs: "
          f"{[x for x, _ in sbox.valid_input_pairs(dy1[0], dw1[0])]}")
    print(f"DDT[{dy1[1]}][{dw1[1]}] = {sbox.ddt[dy1[1], dw1[1]]} "
          f"(lower S-box), valid inputs: "
          f"{[hex(x) for x, _ in sbox.valid_input_pairs(dy1[1], dw1[1])]}")

    toy = ToyGift()
    exact = toy.characteristic_probability_exact()
    markov = toy.characteristic_probability_markov()
    print(f"\nwiring found for Figure 1: {default_wiring()}")
    print(f"exact probability (enumeration) : {exact} = 2^-6")
    print(f"Markov product (paper Eq. 2)    : {markov} = 2^-9")
    print(f"ratio                           : {exact / markov:.0f}x")

    violation = markov_violation_toygift()
    print(f"\nDefinition 2 violation (max TV over conditioning inputs): "
          f"{violation:.4f}")
    print("-> an unkeyed round is maximally value-dependent; Eq. 2's "
          "round-by-round product is unjustified, which is exactly why "
          "the paper simulates all-in-one differentials with a neural "
          "network instead.")


if __name__ == "__main__":
    main()
