"""The paper's online phase as an incremental, service-shaped API.

Algorithm 2's online loop queries the unknown oracle, measures the
classifier's accuracy ``a'`` over a sample budget (the paper's
``2^14.3``-style online complexity), and decides CIPHER when ``a'``
clears the midpoint threshold ``(a + 1/t) / 2``.  Batch code runs that
loop in one call (:meth:`MLDistinguisher.test`); a service instead
receives the queries in *increments*, so :class:`OnlineSession` keeps
the running tally: feed ``(predicted, labels)`` batches as they arrive,
read the running accuracy at any time, and get the verdict once the
budget is met.

The verdict is deliberately withheld until ``target_samples`` have been
seen — deciding early on a lucky prefix is exactly the error the
paper's online complexity bound exists to prevent.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Optional

import numpy as np

from repro.core.distinguisher import OnlineResult
from repro.core.statistics import (
    binomial_pvalue,
    decision_threshold,
    required_online_samples,
)
from repro.errors import ServeError


class OnlineSession:
    """Running CIPHER/RANDOM decision state for one oracle under test.

    ``training_accuracy`` is the offline phase's ``a`` (the manifest's
    ``validation_accuracy``); ``num_classes`` is ``t``.  The decision
    threshold defaults to the paper's midpoint and the sample budget to
    the two-hypothesis sizing of
    :func:`~repro.core.statistics.required_online_samples` at 1% error.
    """

    def __init__(
        self,
        training_accuracy: float,
        num_classes: int,
        target_samples: Optional[int] = None,
        error_probability: float = 0.01,
        threshold: Optional[float] = None,
        session_id: Optional[str] = None,
    ):
        if num_classes < 2:
            raise ServeError(f"the game needs t >= 2 classes, got {num_classes}")
        self.training_accuracy = float(training_accuracy)
        self.num_classes = int(num_classes)
        self.threshold = (
            float(threshold)
            if threshold is not None
            else decision_threshold(self.training_accuracy, self.num_classes)
        )
        self.target_samples = int(
            target_samples
            if target_samples is not None
            else required_online_samples(
                self.training_accuracy, self.num_classes, error_probability
            )
        )
        if self.target_samples <= 0:
            raise ServeError(
                f"target_samples must be positive, got {self.target_samples}"
            )
        self.session_id = session_id
        self._lock = threading.Lock()
        self._correct = 0
        self._seen = 0

    # -- feeding -----------------------------------------------------------

    def update(self, predicted: np.ndarray, labels: np.ndarray) -> dict:
        """Fold one batch of ``(predicted class, true class)`` pairs in.

        Returns the state dict of :meth:`state` after the update.  The
        "true" labels are the attacker's own bookkeeping — they know
        which input difference ``δ_i`` each query used.
        """
        predicted = np.asarray(predicted).ravel()
        labels = np.asarray(labels).ravel()
        if predicted.shape != labels.shape:
            raise ServeError(
                f"predicted has {predicted.shape[0]} entries but labels has "
                f"{labels.shape[0]}"
            )
        if predicted.size == 0:
            raise ServeError("cannot update a session with an empty batch")
        correct = int((predicted == labels).sum())
        with self._lock:
            self._correct += correct
            self._seen += int(predicted.size)
            return self._state_locked()

    # -- reading -----------------------------------------------------------

    @property
    def samples_seen(self) -> int:
        with self._lock:
            return self._seen

    @property
    def accuracy(self) -> Optional[float]:
        """Running online accuracy ``a'``; ``None`` before any sample."""
        with self._lock:
            return self._correct / self._seen if self._seen else None

    @property
    def done(self) -> bool:
        """Whether the configured sample budget has been met."""
        with self._lock:
            return self._seen >= self.target_samples

    @property
    def verdict(self) -> Optional[str]:
        """``"CIPHER"``/``"RANDOM"`` once the budget is met, else ``None``."""
        with self._lock:
            if self._seen < self.target_samples:
                return None
            accuracy = self._correct / self._seen
            return "CIPHER" if accuracy > self.threshold else "RANDOM"

    def _state_locked(self) -> dict:
        accuracy = self._correct / self._seen if self._seen else None
        done = self._seen >= self.target_samples
        verdict = None
        if done:
            verdict = "CIPHER" if accuracy > self.threshold else "RANDOM"
        return {
            "session": self.session_id,
            "samples": self._seen,
            "correct": self._correct,
            "target_samples": self.target_samples,
            "progress": min(1.0, self._seen / self.target_samples),
            "accuracy": accuracy,
            "threshold": self.threshold,
            "training_accuracy": self.training_accuracy,
            "num_classes": self.num_classes,
            "done": done,
            "verdict": verdict,
        }

    def state(self) -> dict:
        """A JSON-ready snapshot of the running decision."""
        with self._lock:
            return self._state_locked()

    def result(self) -> OnlineResult:
        """The finished online phase as a core ``OnlineResult``.

        Raises until the sample budget is met; Algorithm 2's verdict is
        undefined before then.
        """
        with self._lock:
            if self._seen < self.target_samples:
                raise ServeError(
                    f"online phase incomplete: {self._seen} of "
                    f"{self.target_samples} samples seen"
                )
            accuracy = self._correct / self._seen
            return OnlineResult(
                accuracy=accuracy,
                num_samples=self._seen,
                num_classes=self.num_classes,
                training_accuracy=self.training_accuracy,
                threshold=self.threshold,
                p_value=binomial_pvalue(
                    self._correct, self._seen, 1.0 / self.num_classes
                ),
                is_cipher=accuracy > self.threshold,
            )


class SessionStore:
    """Bounded id -> :class:`OnlineSession` table for the HTTP layer."""

    def __init__(self, max_sessions: int = 4096):
        if max_sessions <= 0:
            raise ServeError(f"max_sessions must be positive, got {max_sessions}")
        self.max_sessions = int(max_sessions)
        self._lock = threading.Lock()
        self._sessions: Dict[str, OnlineSession] = {}
        self._counter = itertools.count(1)

    def create(self, **kwargs) -> OnlineSession:
        """Mint a new session with a unique id (kwargs as OnlineSession)."""
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise ServeError(
                    f"session table is full ({self.max_sessions}); finish or "
                    "drop existing sessions first"
                )
            session_id = f"s{next(self._counter):08d}"
            session = OnlineSession(session_id=session_id, **kwargs)
            self._sessions[session_id] = session
            return session

    def get(self, session_id: str) -> OnlineSession:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise ServeError(f"unknown session {session_id!r}") from None

    def drop(self, session_id: str) -> None:
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise ServeError(f"unknown session {session_id!r}")

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
