"""Batch normalisation, residual blocks and Gohr's CRYPTO'19 network.

The paper's §2.3 baseline is Gohr's deep residual distinguisher for
SPECK-32/64: a bit-sliced Conv1D front end, a tower of two-convolution
residual blocks with batch normalisation, and a dense head.  This
module adds the two missing ingredients to the layer zoo —
:class:`BatchNorm` and :class:`ResidualBlock` (a container layer, so
the skip connection fits the ``Sequential`` stack) — and a
:func:`gohr_resnet` factory reproducing the architecture at a
configurable depth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LayerError
from repro.nn.conv import Conv1D
from repro.nn.layers import Dense, Flatten, Layer, ReLU, Reshape, Sigmoid
from repro.nn.model import Sequential


class BatchNorm(Layer):
    """Batch normalisation over the last axis (features/channels).

    Normalises with batch statistics during training and exponential
    moving averages at inference, with learned scale ``gamma`` and
    shift ``beta`` (Ioffe & Szegedy, 2015) — the stabiliser Gohr's
    residual tower depends on.
    """

    def __init__(self, momentum: float = 0.99, epsilon: float = 1e-5):
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise LayerError(f"momentum must be in [0, 1), got {momentum}")
        if epsilon <= 0:
            raise LayerError(f"epsilon must be positive, got {epsilon}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self._cache: Optional[Tuple] = None
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None

    def build(self, input_shape, rng):
        del rng
        features = int(input_shape[-1])
        gamma = np.ones(features, dtype=self.dtype)
        beta = np.zeros(features, dtype=self.dtype)
        self.params = [gamma, beta]
        self.grads = [np.zeros_like(gamma), np.zeros_like(beta)]
        self.running_mean = np.zeros(features, dtype=self.dtype)
        self.running_var = np.ones(features, dtype=self.dtype)
        self.built = True

    def set_dtype(self, dtype):
        super().set_dtype(dtype)
        if self.running_mean is not None:
            self.running_mean = self.running_mean.astype(self.dtype, copy=False)
            self.running_var = self.running_var.astype(self.dtype, copy=False)

    def _axes(self, x: np.ndarray) -> Tuple[int, ...]:
        return tuple(range(x.ndim - 1))

    def forward(self, x, training=False):
        gamma, beta = self.params
        if training:
            axes = self._axes(x)
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
            inv_std = 1.0 / np.sqrt(var + self.epsilon)
            normalised = (x - mean) * inv_std
            self._cache = (normalised, inv_std, x.shape)
        else:
            inv_std = 1.0 / np.sqrt(self.running_var + self.epsilon)
            normalised = (x - self.running_mean) * inv_std
            self._cache = None
        return gamma * normalised + beta

    def backward(self, grad):
        if self._cache is None:
            raise LayerError("backward called without a training forward pass")
        gamma, _beta = self.params
        normalised, inv_std, shape = self._cache
        axes = tuple(range(len(shape) - 1))
        m = int(np.prod([shape[a] for a in axes]))
        self.grads[0] = (grad * normalised).sum(axis=axes)
        self.grads[1] = grad.sum(axis=axes)
        # Gradient through the normalisation (standard batchnorm backward).
        dnorm = grad * gamma
        term1 = dnorm
        term2 = dnorm.mean(axis=axes)
        term3 = normalised * (dnorm * normalised).mean(axis=axes)
        del m
        return inv_std * (term1 - term2 - term3)

    def get_config(self):
        return {"momentum": self.momentum, "epsilon": self.epsilon}


class ResidualBlock(Layer):
    """A container layer computing ``x + inner(x)`` (identity skip).

    ``inner`` is a list of layers whose composite output shape must
    equal its input shape.  Packaging the skip connection as a layer
    keeps Gohr's residual tower expressible in a plain ``Sequential``.
    """

    def __init__(self, inner: Sequence[Layer]):
        super().__init__()
        if not inner:
            raise LayerError("a residual block needs at least one inner layer")
        self.inner: List[Layer] = list(inner)

    def set_dtype(self, dtype):
        # params/grads are properties backed by the inner layers.
        self.dtype = np.dtype(dtype)
        for layer in self.inner:
            layer.set_dtype(dtype)

    def build(self, input_shape, rng):
        shape = tuple(input_shape)
        for layer in self.inner:
            layer.set_dtype(self.dtype)
            if not layer.built:
                layer.build(shape, rng)
            shape = layer.output_shape(shape)
        if shape != tuple(input_shape):
            raise LayerError(
                f"residual inner stack maps {tuple(input_shape)} to {shape}; "
                "shapes must match for the identity skip"
            )
        self.built = True

    @property
    def params(self):
        return [p for layer in self.inner for p in layer.params]

    @params.setter
    def params(self, value):
        # Base-class __init__ assigns []; inner layers own the real params.
        if value:
            raise LayerError("ResidualBlock parameters live on its inner layers")

    @property
    def grads(self):
        return [g for layer in self.inner for g in layer.grads]

    @grads.setter
    def grads(self, value):
        if value:
            raise LayerError("ResidualBlock gradients live on its inner layers")

    def forward(self, x, training=False):
        out = x
        for layer in self.inner:
            out = layer.forward(out, training=training)
        return x + out

    def backward(self, grad):
        inner_grad = grad
        for layer in reversed(self.inner):
            inner_grad = layer.backward(inner_grad)
        return grad + inner_grad

    def output_shape(self, input_shape):
        return tuple(input_shape)

    def count_params(self):
        return sum(layer.count_params() for layer in self.inner)

    def get_config(self):
        # Persistence of nested layers is handled via Sequential-level
        # reconstruction; blocks used in saved models must be rebuilt in
        # code (documented limitation).
        raise LayerError(
            "ResidualBlock does not support .npz persistence; rebuild the "
            "architecture in code and load per-layer weights instead"
        )


def gohr_resnet(
    depth: int = 3,
    filters: int = 32,
    kernel_size: int = 3,
    word_bits: int = 16,
    words: int = 4,
    dense_units: int = 64,
    num_classes: int = 2,
) -> Sequential:
    """Gohr's residual distinguisher (CRYPTO'19), numpy edition.

    Input: ``words * word_bits`` ciphertext-pair bits (for SPECK-32/64,
    the four 16-bit words of ``(C, C')``).  The bit-slice Reshape puts
    one word per channel so convolutions slide over bit positions, as in
    Gohr's design; ``depth`` residual blocks follow, then the dense
    head.  Gohr's output is a single sigmoid unit; ``num_classes = 2``
    keeps the distinguisher-framework convention of a softmax pair —
    pass ``num_classes = 1`` for the faithful sigmoid head.
    """
    if depth < 1:
        raise LayerError(f"depth must be positive, got {depth}")
    layers: List[Layer] = [
        # (words * word_bits,) bits -> (word_bits, words): one word per
        # channel, convolution over bit positions.
        Reshape((words, word_bits)),
        Transpose12(),
        Conv1D(filters, 1, padding="same"),
        BatchNorm(),
        ReLU(),
    ]
    for _ in range(depth):
        layers.append(
            ResidualBlock(
                [
                    Conv1D(filters, kernel_size, padding="same"),
                    BatchNorm(),
                    ReLU(),
                    Conv1D(filters, kernel_size, padding="same"),
                    BatchNorm(),
                    ReLU(),
                ]
            )
        )
    layers += [Flatten(), Dense(dense_units), BatchNorm(), ReLU()]
    if num_classes == 1:
        layers += [Dense(1), Sigmoid()]
    else:
        from repro.nn.layers import Softmax

        layers += [Dense(num_classes), Softmax()]
    return Sequential(layers)


class Transpose12(Layer):
    """Swap the two non-batch axes: ``(n, a, b) -> (n, b, a)``."""

    def forward(self, x, training=False):
        return np.swapaxes(x, 1, 2)

    def backward(self, grad):
        return np.swapaxes(grad, 1, 2)

    def output_shape(self, input_shape):
        a, b = input_shape
        return (b, a)
