"""Automated input-difference search (the scenario-diversity engine).

The paper hand-picks its input differences ``δi`` per cipher; this
package replaces the hand with an AutoND-style loop:

* :mod:`repro.search.oracle` — a bias-scoring oracle: one candidate
  difference is scored by the mean absolute per-bit bias of the output
  difference over a small deterministic sample bank (milliseconds per
  score, memoised, ``REPRO_WORKERS``-invariant).
* :mod:`repro.search.evolve` — an elitist evolutionary optimizer over
  bit-difference candidates (seeded, deterministic), returning a ranked
  top-``k`` per cipher × rounds.
* :mod:`repro.search.config` — a declarative JSON scenario schema and a
  builder registry, so any registered cipher × rounds × difference-set
  (including the related-key variants of
  :mod:`repro.core.related_key`) is a one-line experiment.
* :mod:`repro.search.pipeline` — search → train
  (:class:`~repro.core.distinguisher.MLDistinguisher`) → register
  (:class:`~repro.serve.ModelRegistry`), with the discovered difference
  set recorded in the served model's manifest.

CLI::

    PYTHONPATH=src python -m repro.search config.json --registry registry/
    PYTHONPATH=src python -m repro.search --scenario toyspeck --rounds 3
"""

from repro.search.config import (
    SCENARIO_BUILDERS,
    ScenarioBuilder,
    ScenarioSpec,
    get_scenario_builder,
    register_scenario_builder,
)
from repro.search.evolve import SearchConfig, SearchResult, evolve_differences
from repro.search.oracle import BiasScoringOracle
from repro.search.pipeline import run_search, run_search_pipeline

__all__ = [
    "BiasScoringOracle",
    "SCENARIO_BUILDERS",
    "ScenarioBuilder",
    "ScenarioSpec",
    "SearchConfig",
    "SearchResult",
    "evolve_differences",
    "get_scenario_builder",
    "register_scenario_builder",
    "run_search",
    "run_search_pipeline",
]
