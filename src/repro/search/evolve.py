"""Evolutionary search over input differences (AutoND-style).

The search space is the non-zero bit-difference space of a scenario's
input — ``2^16`` for ToySpeck, ``2^48`` for its related-key variant,
``2^120`` for a Gimli-Hash message block — far too large to sweep but
highly structured: good differences are low-weight, and the bias score
of a difference varies smoothly-ish under single-bit edits.  A small
evolutionary loop exploits that:

* the population starts from single-bit candidates plus a few random
  low-weight ones (good trails start narrow);
* each generation keeps the ``elite`` best, breeds the rest by uniform
  bitwise crossover of elite parents, and mutates offspring by flipping
  1..``mutation_bits`` random bits;
* selection is elitist over *all evaluations ever made* (the oracle
  memoises, so re-ranking history is free) and the final answer is the
  global top-``k``.

Determinism: every random draw comes from one
:class:`~numpy.random.Generator` seeded by ``config.seed``, and oracle
scores are worker-invariant by construction, so a seeded search returns
bit-identical ranked results for any ``REPRO_WORKERS``.

An optional ``allowed`` bit mask restricts the search to a subspace —
e.g. the message bytes of a Gimli-Hash block (flipping padding bytes
would change the message length, not the message), or plaintext-only /
key-only subspaces of a related-key scenario.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SearchError
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.search.oracle import BiasScoringOracle, DEFAULT_SAMPLES
from repro.utils.rng import random_words

_log = obs_log.get_logger("repro.search")

#: Environment-variable names for the search budget knobs, mirrored by
#: :meth:`SearchConfig.from_env` (see EXPERIMENTS.md).
ENV_POPULATION = "REPRO_SEARCH_POPULATION"
ENV_GENERATIONS = "REPRO_SEARCH_GENERATIONS"
ENV_SAMPLES = "REPRO_SEARCH_SAMPLES"
ENV_SEED = "REPRO_SEARCH_SEED"
ENV_TOP_K = "REPRO_SEARCH_TOP_K"


def _env_int(name: str, fallback: int, minimum: int = 1) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        raise SearchError(f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise SearchError(f"{name} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class SearchConfig:
    """Budget and reproducibility knobs of one evolutionary search."""

    population_size: int = 32
    generations: int = 8
    elite: int = 8
    mutation_bits: int = 2
    top_k: int = 4
    n_samples: int = DEFAULT_SAMPLES
    seed: int = 0
    workers: Optional[int] = None

    def __post_init__(self):
        if self.population_size < 2:
            raise SearchError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.generations < 1:
            raise SearchError(f"generations must be >= 1, got {self.generations}")
        if not 1 <= self.elite <= self.population_size:
            raise SearchError(
                f"elite must be in [1, population_size], got {self.elite}"
            )
        if self.mutation_bits < 1:
            raise SearchError(
                f"mutation_bits must be >= 1, got {self.mutation_bits}"
            )
        if self.top_k < 1:
            raise SearchError(f"top_k must be >= 1, got {self.top_k}")
        if self.n_samples < 2:
            raise SearchError(f"n_samples must be >= 2, got {self.n_samples}")

    @classmethod
    def from_env(cls, **overrides) -> "SearchConfig":
        """Defaults, overridden by ``REPRO_SEARCH_*``, then by kwargs."""
        base = cls(
            population_size=_env_int(ENV_POPULATION, cls.population_size),
            generations=_env_int(ENV_GENERATIONS, cls.generations),
            n_samples=_env_int(ENV_SAMPLES, cls.n_samples, minimum=2),
            seed=_env_int(ENV_SEED, cls.seed, minimum=0),
            top_k=_env_int(ENV_TOP_K, cls.top_k),
        )
        return replace(base, **overrides) if overrides else base


@dataclass
class SearchResult:
    """Ranked outcome of one evolutionary search."""

    #: ``(top_k, input_words)`` difference masks, best first
    ranked_masks: np.ndarray
    #: matching bias scores, best first
    ranked_scores: np.ndarray
    #: distinct candidates evaluated over the whole run
    evaluations: int
    #: oracle noise floor (scores near it are indistinguishable from noise)
    noise_floor: float
    #: per-generation ``{"generation", "best", "mean"}`` rows
    history: List[dict] = field(default_factory=list)
    config: Optional[SearchConfig] = None

    @property
    def best_mask(self) -> np.ndarray:
        return self.ranked_masks[0]

    @property
    def best_score(self) -> float:
        return float(self.ranked_scores[0])

    def top(self, k: int) -> np.ndarray:
        """The best ``k`` masks as a difference set for a scenario."""
        if not 1 <= k <= self.ranked_masks.shape[0]:
            raise SearchError(
                f"asked for top {k} of {self.ranked_masks.shape[0]} ranked masks"
            )
        return self.ranked_masks[:k].copy()

    def summary(self) -> dict:
        """JSON-ready digest (registry manifests, CLI output)."""
        return {
            "algorithm": "evolutionary-bias",
            "ranked_differences": self.ranked_masks.tolist(),
            "ranked_scores": [float(s) for s in self.ranked_scores],
            "evaluations": int(self.evaluations),
            "noise_floor": float(self.noise_floor),
            "generations": len(self.history),
            "config": {
                "population_size": self.config.population_size,
                "generations": self.config.generations,
                "elite": self.config.elite,
                "mutation_bits": self.config.mutation_bits,
                "top_k": self.config.top_k,
                "n_samples": self.config.n_samples,
                "seed": self.config.seed,
            }
            if self.config is not None
            else None,
        }


def _bit_positions(words: int, width: int, allowed: Optional[np.ndarray]) -> np.ndarray:
    """Flat indices (``word * width + bit``) the search may flip."""
    if allowed is None:
        return np.arange(words * width, dtype=np.int64)
    allowed = np.asarray(allowed)
    if allowed.shape != (words,):
        raise SearchError(
            f"allowed mask must have shape ({words},), got {allowed.shape}"
        )
    positions = [
        word * width + bit
        for word in range(words)
        for bit in range(width)
        if (int(allowed[word]) >> bit) & 1
    ]
    if not positions:
        raise SearchError("allowed mask permits no bits")
    return np.asarray(positions, dtype=np.int64)


def _flip(mask: np.ndarray, flat_bit: int, width: int) -> None:
    word, bit = divmod(int(flat_bit), width)
    mask[word] ^= mask.dtype.type(1 << bit)


def _random_mask(
    rng, words: int, width: int, dtype, positions: np.ndarray, weight: int
) -> np.ndarray:
    mask = np.zeros(words, dtype=dtype)
    for flat in rng.choice(positions, size=weight, replace=False):
        _flip(mask, flat, width)
    return mask


def evolve_differences(
    oracle: BiasScoringOracle,
    config: Optional[SearchConfig] = None,
    allowed: Optional[np.ndarray] = None,
    seeds: Optional[Sequence] = None,
) -> SearchResult:
    """Run the evolutionary search and return the global top-``k``.

    ``oracle`` supplies geometry and fitness; ``allowed`` optionally
    restricts the searchable bits; ``seeds`` are extra masks injected
    into the initial population (e.g. the paper's hand-picked
    differences, so the search can only match or beat them).
    """
    config = config or SearchConfig()
    words = oracle.input_words
    width = oracle.word_width
    dtype = oracle.prototype.difference_masks.dtype
    positions = _bit_positions(words, width, allowed)
    allowed_words = np.zeros(words, dtype=dtype)
    for flat in positions:
        _flip(allowed_words, flat, width)
    rng = np.random.default_rng(config.seed)

    # -- initial population: every (or a sample of) single-bit masks,
    # injected seeds, then random 2-3 bit candidates up to size.
    population: List[np.ndarray] = []
    seen = set()

    def admit(mask: np.ndarray) -> bool:
        if not mask.any():
            return False
        key = mask.tobytes()
        if key in seen:
            return False
        seen.add(key)
        population.append(mask)
        return True

    if seeds is not None:
        for seed_mask in seeds:
            arr = np.asarray(seed_mask, dtype=dtype)
            if arr.shape != (words,):
                raise SearchError(
                    f"seed mask must have shape ({words},), got {arr.shape}"
                )
            admit(arr.copy())
    single_bits = (
        positions
        if len(positions) <= config.population_size
        else rng.choice(positions, size=config.population_size, replace=False)
    )
    for flat in single_bits:
        if len(population) >= config.population_size:
            break
        mask = np.zeros(words, dtype=dtype)
        _flip(mask, flat, width)
        admit(mask)
    guard = 0
    while len(population) < config.population_size and guard < 10_000:
        guard += 1
        max_weight = min(4, len(positions))
        weight = 1 if max_weight < 2 else int(rng.integers(2, max_weight + 1))
        admit(_random_mask(rng, words, width, dtype, positions, weight))

    scores: dict = {}
    history: List[dict] = []
    with span(
        "search.evolve",
        generations=config.generations,
        population=config.population_size,
    ):
        for generation in range(config.generations):
            batch = np.stack(population)
            with span("search.generation", generation=generation,
                      candidates=batch.shape[0]):
                batch_scores = oracle.score_batch(batch)
            for mask, score in zip(population, batch_scores):
                scores[mask.tobytes()] = (float(score), mask)
            ranked_now = sorted(
                scores.values(), key=lambda item: (-item[0], item[1].tobytes())
            )
            best, mean = ranked_now[0][0], float(np.mean(batch_scores))
            history.append(
                {"generation": generation, "best": best, "mean": mean}
            )
            REGISTRY.gauge("repro_search_best_score").set(best)
            _log.info(
                "search.generation",
                generation=generation,
                best=round(best, 5),
                mean=round(mean, 5),
                evaluated=len(scores),
            )
            if generation == config.generations - 1:
                break

            # -- next generation: global elite plus crossover+mutation
            # offspring (dedup against everything ever evaluated, so no
            # oracle call is wasted re-scoring a known candidate).
            elite = [item[1] for item in ranked_now[: config.elite]]
            population = [mask.copy() for mask in elite]
            seen = {mask.tobytes() for mask in population}
            attempts = 0
            while (
                len(population) < config.population_size
                and attempts < 50 * config.population_size
            ):
                attempts += 1
                a, b = (
                    elite[int(rng.integers(0, len(elite)))],
                    elite[int(rng.integers(0, len(elite)))],
                )
                # Uniform bitwise crossover inside the allowed subspace
                # (the parents live there, so b & ~selector does too).
                selector = random_words(rng, (words,), width) & allowed_words
                child = (a & selector) | (b & ~selector)
                flips = min(
                    int(rng.integers(1, config.mutation_bits + 1)),
                    len(positions),
                )
                for flat in rng.choice(positions, size=flips, replace=False):
                    _flip(child, flat, width)
                key = child.tobytes()
                if child.any() and key not in seen and key not in scores:
                    seen.add(key)
                    population.append(child)
            while len(population) < config.population_size:
                # Degenerate corner (tiny spaces exhaust themselves):
                # refill with random already-scored masks; they cost
                # nothing to re-rank.
                population.append(
                    _random_mask(rng, words, width, dtype, positions, 1)
                )

    ranked = sorted(
        scores.values(), key=lambda item: (-item[0], item[1].tobytes())
    )
    top_k = min(config.top_k, len(ranked))
    result = SearchResult(
        ranked_masks=np.stack([item[1] for item in ranked[:top_k]]),
        ranked_scores=np.array([item[0] for item in ranked[:top_k]]),
        evaluations=len(scores),
        noise_floor=oracle.noise_floor(),
        history=history,
        config=config,
    )
    _log.info(
        "search.done",
        best=round(result.best_score, 5),
        evaluations=result.evaluations,
    )
    return result
