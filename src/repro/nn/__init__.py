"""A from-scratch numpy neural-network library.

The paper trains its distinguishers with Keras/TensorFlow (MLPs up to
1.2M parameters, plus LSTM and CNN comparison points) — none of which is
available offline, so this package reimplements the required subset:
layers with exact forward/backward passes, categorical cross-entropy,
the Adam optimizer the paper uses, a Keras-like ``Sequential`` model
with ``fit``/``evaluate``/``predict``, parameter counting (reproducing
Table 3's parameter column), and ``.npz`` model persistence standing in
for the paper's ``.h5`` files.

Gradients of every layer are validated against numerical differentiation
in the test suite.
"""

from repro.nn.callbacks import EarlyStopping, History
from repro.nn.conv import Conv1D, GlobalAveragePool1D, MaxPool1D
from repro.nn.initializers import (
    glorot_uniform,
    he_uniform,
    normal_init,
    zeros_init,
)
from repro.nn.layers import (
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.losses import (
    BinaryCrossentropy,
    CategoricalCrossentropy,
    MeanSquaredError,
)
from repro.nn.model import Sequential, load_model
from repro.nn.optimizers import SGD, Adam
from repro.nn.quant import QuantizedSequential, quantize_model
from repro.nn.recurrent import LSTM

__all__ = [
    "Adam",
    "BinaryCrossentropy",
    "CategoricalCrossentropy",
    "Conv1D",
    "Dense",
    "Dropout",
    "EarlyStopping",
    "Flatten",
    "GlobalAveragePool1D",
    "History",
    "LSTM",
    "LeakyReLU",
    "MaxPool1D",
    "MeanSquaredError",
    "QuantizedSequential",
    "ReLU",
    "Reshape",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "glorot_uniform",
    "he_uniform",
    "load_model",
    "normal_init",
    "quantize_model",
    "zeros_init",
]
