"""Bit-level primitives shared by every cipher implementation.

All routines work both on plain Python integers and on numpy unsigned
integer arrays, because each cipher in :mod:`repro.ciphers` ships a
scalar reference implementation (read it next to the spec) and a
vectorised batch implementation (used to generate millions of
differential samples).  Keeping the two code paths on the same helpers
is what makes the cross-checking property tests meaningful.
"""

from __future__ import annotations

from typing import Union

import numpy as np

IntOrArray = Union[int, np.ndarray]

_WORD_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


def mask(width: int) -> int:
    """Return the all-ones mask for a ``width``-bit word."""
    if width <= 0:
        raise ValueError(f"word width must be positive, got {width}")
    return (1 << width) - 1


def word_dtype(width: int) -> type:
    """Return the numpy dtype used for ``width``-bit cipher words."""
    try:
        return _WORD_DTYPES[width]
    except KeyError:
        raise ValueError(
            f"unsupported word width {width}; expected one of "
            f"{sorted(_WORD_DTYPES)}"
        ) from None


def rotl(value: IntOrArray, amount: int, width: int) -> IntOrArray:
    """Rotate ``value`` left by ``amount`` bits within a ``width``-bit word.

    Works on scalars and numpy arrays alike.  ``amount`` is reduced
    modulo ``width`` so callers may pass the spec's raw constants.
    """
    amount %= width
    if amount == 0:
        return value if isinstance(value, int) else value.copy()
    if isinstance(value, (int, np.integer)):
        value = int(value)
        m = mask(width)
        return ((value << amount) | (value >> (width - amount))) & m
    dtype = word_dtype(width)
    value = value.astype(dtype, copy=False)
    left = np.left_shift(value, dtype(amount))
    right = np.right_shift(value, dtype(width - amount))
    return (left | right).astype(dtype)


def rotr(value: IntOrArray, amount: int, width: int) -> IntOrArray:
    """Rotate ``value`` right by ``amount`` bits within a ``width``-bit word."""
    return rotl(value, width - (amount % width), width)


def rotl32(value: IntOrArray, amount: int) -> IntOrArray:
    """32-bit left rotation (the Gimli and Salsa word size)."""
    return rotl(value, amount, 32)


def rotr32(value: IntOrArray, amount: int) -> IntOrArray:
    """32-bit right rotation."""
    return rotr(value, amount, 32)


def shl(value: IntOrArray, amount: int, width: int) -> IntOrArray:
    """Non-circular left shift within a ``width``-bit word (bits fall off)."""
    if amount < 0:
        raise ValueError(f"shift amount must be non-negative, got {amount}")
    if amount >= width:
        return 0 if isinstance(value, (int, np.integer)) else np.zeros_like(value)
    if isinstance(value, (int, np.integer)):
        return (int(value) << amount) & mask(width)
    dtype = word_dtype(width)
    return np.left_shift(value.astype(dtype, copy=False), dtype(amount)).astype(dtype)


def shr(value: IntOrArray, amount: int, width: int) -> IntOrArray:
    """Non-circular right shift within a ``width``-bit word."""
    if amount < 0:
        raise ValueError(f"shift amount must be non-negative, got {amount}")
    if amount >= width:
        return 0 if isinstance(value, (int, np.integer)) else np.zeros_like(value)
    if isinstance(value, (int, np.integer)):
        return int(value) >> amount
    dtype = word_dtype(width)
    return np.right_shift(value.astype(dtype, copy=False), dtype(amount)).astype(dtype)


def hamming_weight(value: IntOrArray) -> IntOrArray:
    """Number of set bits of a scalar or of each element of an array."""
    if isinstance(value, (int, np.integer)):
        return bin(int(value)).count("1")
    # numpy has no popcount until 2.0's bitwise_count; emulate portably.
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(value).astype(np.int64)
    flat = value.astype(np.uint64).ravel()
    counts = np.zeros(flat.shape, dtype=np.int64)
    work = flat.copy()
    while work.any():
        counts += (work & np.uint64(1)).astype(np.int64)
        work >>= np.uint64(1)
    return counts.reshape(value.shape)


def parity(value: IntOrArray) -> IntOrArray:
    """XOR of all bits (1 if the Hamming weight is odd)."""
    weight = hamming_weight(value)
    if isinstance(weight, (int, np.integer)):
        return int(weight) & 1
    return weight & 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (LSB = 0) of a scalar integer."""
    return (int(value) >> index) & 1


def set_bit(value: int, index: int, bit_value: int = 1) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit_value``."""
    if bit_value not in (0, 1):
        raise ValueError(f"bit value must be 0 or 1, got {bit_value}")
    cleared = int(value) & ~(1 << index)
    return cleared | (bit_value << index)


def flip_bit(value: int, index: int) -> int:
    """Return ``value`` with bit ``index`` toggled."""
    return int(value) ^ (1 << index)
