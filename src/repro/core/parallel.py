"""Parallel, shard-deterministic dataset generation.

Generating the paper's ``2^17.6``-sample training sets is embarrassingly
parallel — every base input is independent — but a naive fork-join over
one RNG stream would make the dataset depend on the worker count.  This
module shards the work instead:

* ``n_per_class`` is cut into fixed-size shards (:data:`DEFAULT_SHARD_SIZE`
  base inputs each) **independent of the worker count**;
* a root :class:`numpy.random.SeedSequence` derived from the caller's
  ``rng`` spec is ``spawn``-ed into one child per shard plus one reserved
  child for the final shuffle;
* each shard runs the ordinary
  :meth:`~repro.core.scenario.DifferentialScenario.generate_dataset`
  (unshuffled) on its own child stream;
* shard outputs are re-grouped by class and concatenated in shard order,
  then shuffled once with the reserved stream.

Because the shard plan and every stream are functions of the seed alone,
``workers=1`` and ``workers=N`` produce bit-identical ``(x, y)`` arrays;
the worker count only decides how many shards run concurrently.  The
scenario object must be picklable (all built-in scenarios are); shards
are dispatched over a :mod:`multiprocessing` pool when ``workers > 1``
and run in-process otherwise.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DistinguisherError
from repro.utils.rng import RngLike

#: Base inputs per shard.  Chosen so one shard is large enough to keep
#: the vectorised cipher kernels efficient but small enough that a
#: typical worker pool stays busy; part of the determinism contract —
#: changing it changes the generated dataset.
DEFAULT_SHARD_SIZE = 4096


def seed_sequence_from(rng: RngLike) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for any accepted seed form.

    Integers and seed sequences map deterministically; a generator
    contributes entropy drawn from its stream (so repeated calls
    differ, matching :func:`repro.utils.rng.derive_rng`); ``None``
    pulls OS entropy.
    """
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        entropy = [int(s) for s in rng.integers(0, 2**63 - 1, size=4)]
        return np.random.SeedSequence(entropy)
    return np.random.SeedSequence(rng)


def shard_sizes(n: int, shard_size: int = DEFAULT_SHARD_SIZE) -> List[int]:
    """Split ``n`` base inputs into full shards plus one remainder shard."""
    if n <= 0:
        raise DistinguisherError(f"n must be positive, got {n}")
    if shard_size <= 0:
        raise DistinguisherError(f"shard_size must be positive, got {shard_size}")
    full, remainder = divmod(n, shard_size)
    sizes = [shard_size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


def _run_shard(job) -> Tuple[np.ndarray, np.ndarray]:
    scenario, shard_n, seed_seq = job
    shard_rng = np.random.Generator(np.random.PCG64(seed_seq))
    return scenario.generate_dataset(shard_n, rng=shard_rng, shuffle=False)


def generate_dataset_sharded(
    scenario,
    n_per_class: int,
    rng: RngLike = None,
    shuffle: bool = True,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shard-deterministic ``(features, labels)`` for ``scenario``.

    Bit-identical for every ``workers`` value given the same seed and
    ``shard_size``; see the module docstring for the construction.
    """
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    sizes = shard_sizes(n_per_class, shard_size)
    children = seed_sequence_from(rng).spawn(len(sizes) + 1)
    jobs = [(scenario, size, child) for size, child in zip(sizes, children)]
    if workers == 1 or len(jobs) == 1:
        results = [_run_shard(job) for job in jobs]
    else:
        with multiprocessing.get_context().Pool(
            processes=min(workers, len(jobs))
        ) as pool:
            results = pool.map(_run_shard, jobs)
    # Each unshuffled shard is grouped by class (t blocks of shard_n
    # rows); regroup so the full dataset has the same class-major layout
    # regardless of how the shards were scheduled.
    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    for class_index in range(scenario.num_classes):
        for (x, y), shard_n in zip(results, sizes):
            rows = slice(class_index * shard_n, (class_index + 1) * shard_n)
            features.append(x[rows])
            labels.append(y[rows])
    x = np.concatenate(features, axis=0)
    y = np.concatenate(labels, axis=0)
    if shuffle:
        shuffler = np.random.Generator(np.random.PCG64(children[-1]))
        order = shuffler.permutation(x.shape[0])
        x, y = x[order], y[order]
    return x, y


def resolve_workers(workers: Optional[int] = None) -> int:
    """Clamp a requested worker count to the machine (``None`` -> 1)."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    return min(workers, multiprocessing.cpu_count())
