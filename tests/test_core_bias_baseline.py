"""Tests for the per-bit-bias naive-Bayes baseline."""

import numpy as np
import pytest

from repro.core.bias_baseline import BitBiasClassifier
from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import GimliHashScenario
from repro.errors import TrainingError


def biased_data(rng, n=2000, bits=16, gap=0.3):
    """Two classes differing only in the bias of the first 4 bits."""
    y = rng.integers(0, 2, size=n)
    p = np.full((n, bits), 0.5)
    p[y == 1, :4] += gap
    x = (rng.random((n, bits)) < p).astype(np.float64)
    return x, y


class TestConstruction:
    def test_invalid_args(self):
        with pytest.raises(TrainingError):
            BitBiasClassifier(num_classes=1)
        with pytest.raises(TrainingError):
            BitBiasClassifier(smoothing=0)

    def test_count_params(self):
        clf = BitBiasClassifier().build((128,))
        assert clf.count_params() == 2 * 129

    def test_count_before_build(self):
        with pytest.raises(TrainingError):
            BitBiasClassifier().count_params()


class TestLearning:
    def test_learns_biased_bits(self, rng):
        x, y = biased_data(rng)
        clf = BitBiasClassifier()
        history = clf.fit(x, y)
        assert history.last("accuracy") > 0.6

    def test_bias_profile_localises_signal(self, rng):
        x, y = biased_data(rng)
        clf = BitBiasClassifier()
        clf.fit(x, y)
        profile = np.abs(clf.bias_profile())
        # Signal bits stand out against the noise bits.
        assert profile[:4].mean() > 5 * profile[4:].mean()

    def test_uniform_data_near_chance(self, rng):
        x = (rng.random((2000, 16)) < 0.5).astype(np.float64)
        y = rng.integers(0, 2, size=2000)
        clf = BitBiasClassifier()
        clf.fit(x, y)
        _, metrics = clf.evaluate(x, y)
        assert abs(metrics["accuracy"] - 0.5) < 0.06

    def test_posteriors_normalised(self, rng):
        x, y = biased_data(rng, n=200)
        clf = BitBiasClassifier()
        clf.fit(x, y)
        posterior = clf.predict(x)
        assert np.allclose(posterior.sum(axis=1), 1.0)

    def test_onehot_labels(self, rng):
        x, y = biased_data(rng, n=200)
        clf = BitBiasClassifier()
        clf.fit(x, np.eye(2)[y])
        assert set(clf.predict_classes(x)).issubset({0, 1})

    def test_empty_class_rejected(self, rng):
        x = rng.random((10, 4))
        y = np.zeros(10, dtype=int)
        with pytest.raises(TrainingError):
            BitBiasClassifier().fit(x, y)

    def test_predict_before_fit(self):
        with pytest.raises(TrainingError):
            BitBiasClassifier().predict(np.zeros((2, 4)))

    def test_mismatched_sizes(self, rng):
        with pytest.raises(TrainingError):
            BitBiasClassifier().fit(np.zeros((4, 2)), np.zeros(5, dtype=int))


class TestAsDistinguisherBaseline:
    def test_distinguishes_low_round_gimli(self):
        """At 5 rounds, marginal bit biases alone distinguish — the
        baseline that contextualises the MLP's accuracy."""
        scenario = GimliHashScenario(rounds=5)
        clf = BitBiasClassifier()
        clf.build((scenario.feature_bits,))
        distinguisher = MLDistinguisher(scenario, model=clf, epochs=1, rng=13)
        report = distinguisher.train(num_samples=8000)
        assert report.validation_accuracy > 0.8
        assert distinguisher.distinguish(
            scenario.cipher_oracle(), 1000, rng=14
        ) == "CIPHER"
        assert distinguisher.distinguish(
            scenario.random_oracle(rng=15, memoize=False), 1000, rng=16
        ) == "RANDOM"
