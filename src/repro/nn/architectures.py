"""The paper's Table 3 network zoo: MLP I-VI, LSTM I-II, CNN I-II.

Table 3 lists each network as a tuple of layer widths starting from the
input.  Reverse-engineering the parameter counts shows the convention:
the first ``128`` is itself a Dense layer applied to the 128 input bits
(e.g. MLP I ``(128, 296, 258, 207, 112, 160, 2)`` has exactly 226,633
parameters only if an initial ``Dense(128)`` is counted), and the final
``2`` is a softmax output layer.  Our MLP factories reproduce the
paper's parameter counts exactly for MLP I/II/IV/V (the paper's MLP
III/VI figure of 1,200,256 is 2 lower than the arithmetic 1,200,258 —
see EXPERIMENTS.md).

The paper does not specify how the 128-bit difference was shaped into
sequences for the LSTM/CNN models; we use 16 time steps of 8 bits (one
byte per step), so those parameter counts are close to but not exactly
the paper's (also recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.errors import LayerError
from repro.nn.conv import Conv1D, GlobalAveragePool1D
from repro.nn.layers import Dense, Flatten, LeakyReLU, ReLU, Reshape, Softmax
from repro.nn.model import Sequential
from repro.nn.recurrent import LSTM

#: Sequence shape used to feed 128-bit differences to LSTM/CNN models.
SEQUENCE_SHAPE = (16, 8)


def build_mlp(
    widths: Sequence[int],
    activation: str = "relu",
    num_classes: int = 2,
) -> Sequential:
    """Dense stack in the paper's Table 3 notation.

    ``widths`` are the Dense layer sizes *including* the initial
    Dense(input_bits) layer but excluding the output layer, e.g. MLP II
    on 128-bit inputs is ``build_mlp([128, 1024])``.
    """
    if not widths:
        raise LayerError("an MLP needs at least one hidden width")
    model = Sequential()
    for width in widths:
        model.add(Dense(int(width)))
        model.add(_activation(activation))
    model.add(Dense(num_classes))
    model.add(Softmax())
    return model


def _activation(name: str):
    name = name.lower()
    if name == "relu":
        return ReLU()
    if name in ("leakyrelu", "leaky_relu"):
        return LeakyReLU()
    raise LayerError(f"unsupported activation {name!r} for Table 3 models")


def mlp_i() -> Sequential:
    """MLP I: (128, 296, 258, 207, 112, 160, 2), ReLU — 226,633 params."""
    return build_mlp([128, 296, 258, 207, 112, 160], "relu")


def mlp_ii() -> Sequential:
    """MLP II: (128, 1024, 2), ReLU — 150,658 params."""
    return build_mlp([128, 1024], "relu")


def mlp_iii() -> Sequential:
    """MLP III: (128, 1024, 1024, 2), ReLU — the paper's best (acc 0.5654)."""
    return build_mlp([128, 1024, 1024], "relu")


def mlp_iv() -> Sequential:
    """MLP IV: (128, 256, 128, 64, 2), LeakyReLU — 90,818 params."""
    return build_mlp([128, 256, 128, 64], "leakyrelu")


def mlp_v() -> Sequential:
    """MLP V: (128, 1024, 2), LeakyReLU — 150,658 params."""
    return build_mlp([128, 1024], "leakyrelu")


def mlp_vi() -> Sequential:
    """MLP VI: (128, 1024, 1024, 2), LeakyReLU."""
    return build_mlp([128, 1024, 1024], "leakyrelu")


def minimal_three_layer(num_classes: int = 2) -> Sequential:
    """The "three layer neural network" of the paper's conclusion.

    Input, one hidden Dense layer, softmax output — the smallest network
    the paper reports as sufficient (MLP II/V shape).
    """
    return build_mlp([128, 1024], "relu", num_classes=num_classes)


def lstm_i() -> Sequential:
    """LSTM I: two stacked LSTMs (256, 128) over byte sequences."""
    return Sequential(
        [
            Reshape(SEQUENCE_SHAPE),
            LSTM(256, return_sequences=True),
            LSTM(128),
            Dense(2),
            Softmax(),
        ]
    )


def lstm_ii() -> Sequential:
    """LSTM II: stacked LSTMs (200, 100) with a Dense(128) head."""
    return Sequential(
        [
            Reshape(SEQUENCE_SHAPE),
            LSTM(200, return_sequences=True),
            LSTM(100),
            Dense(128),
            ReLU(),
            Dense(2),
            Softmax(),
        ]
    )


def cnn_i() -> Sequential:
    """CNN I: Conv1D stack (128, 128, 100 filters) over byte sequences."""
    return Sequential(
        [
            Reshape(SEQUENCE_SHAPE),
            Conv1D(128, 3, padding="same"),
            ReLU(),
            Conv1D(128, 3, padding="same"),
            ReLU(),
            Conv1D(100, 3, padding="same"),
            ReLU(),
            GlobalAveragePool1D(),
            Dense(2),
            Softmax(),
        ]
    )


def cnn_ii() -> Sequential:
    """CNN II: wider Conv1D stack (1024, 128, 128, 100 filters)."""
    return Sequential(
        [
            Reshape(SEQUENCE_SHAPE),
            Conv1D(1024, 3, padding="same"),
            ReLU(),
            Conv1D(128, 3, padding="same"),
            ReLU(),
            Conv1D(128, 3, padding="same"),
            ReLU(),
            Conv1D(100, 3, padding="same"),
            ReLU(),
            GlobalAveragePool1D(),
            Dense(2),
            Softmax(),
        ]
    )


#: Table 3 registry: name -> (factory, activation label as printed).
TABLE3_NETWORKS: Dict[str, Dict] = {
    "MLP I": {"factory": mlp_i, "activation": "ReLU"},
    "MLP II": {"factory": mlp_ii, "activation": "ReLU"},
    "MLP III": {"factory": mlp_iii, "activation": "ReLU"},
    "MLP IV": {"factory": mlp_iv, "activation": "LeakyReLU"},
    "MLP V": {"factory": mlp_v, "activation": "LeakyReLU"},
    "MLP VI": {"factory": mlp_vi, "activation": "LeakyReLU"},
    "LSTM I": {"factory": lstm_i, "activation": "tanh/sigmoid"},
    "LSTM II": {"factory": lstm_ii, "activation": "tanh/sigmoid"},
    "CNN I": {"factory": cnn_i, "activation": "ReLU"},
    "CNN II": {"factory": cnn_ii, "activation": "ReLU"},
}

#: Parameter counts as printed in the paper's Table 3.
TABLE3_PAPER_PARAMS = {
    "MLP I": 226_633,
    "MLP II": 150_658,
    "MLP III": 1_200_256,
    "MLP IV": 90_818,
    "MLP V": 150_658,
    "MLP VI": 1_200_256,
    "LSTM I": 444_162,
    "LSTM II": 313_170,
    "CNN I": 128_046,
    "CNN II": 604_206,
}

#: Accuracies as printed in the paper's Table 3 (8-round Gimli-Cipher).
TABLE3_PAPER_ACCURACY = {
    "MLP I": 0.5465,
    "MLP II": 0.5462,
    "MLP III": 0.5654,
    "MLP IV": 0.5473,
    "MLP V": 0.5470,
    "MLP VI": 0.5476,
    "LSTM I": 0.5305,
    "LSTM II": 0.5324,
    "CNN I": 0.5000,
    "CNN II": 0.5000,
}


def get_table3_network(name: str) -> Sequential:
    """Instantiate a Table 3 network by its printed name."""
    try:
        return TABLE3_NETWORKS[name]["factory"]()
    except KeyError:
        known = ", ".join(TABLE3_NETWORKS)
        raise LayerError(f"unknown Table 3 network {name!r}; known: {known}") from None
