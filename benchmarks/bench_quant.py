"""Quantized-inference latency harness: writes ``BENCH_quant.json``.

Times ``predict_proba`` for the float32 parent and its float16 / int8
variants across the paper's Table 3 model families (MLP III, CNN II,
LSTM II) at single-row and batched shapes, plus the serving path
(:class:`MicroBatchEngine.classify`) at typical coalesced batch sizes.
Entries follow the shared ``BENCH_<suite>.json`` schema (``name`` /
``mean_s`` / ``stddev_s`` / ``rounds``) with quantization extras
(``scheme``, ``rows``, and ``speedup_vs_f32`` on the non-float32
entries), so ``check_regression.py`` gates on the means exactly as it
does for the other suites.

The committed full-mode artefact is also the acceptance record for the
int8 path: ``predict_mlp_iii_int8_*`` must run at least twice as fast
as the matching ``predict_mlp_iii_f32_*`` at both shapes.

Usage::

    PYTHONPATH=src python benchmarks/bench_quant.py [--quick] [--output-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.nn import quantize_model  # noqa: E402
from repro.nn.architectures import cnn_ii, lstm_ii, mlp_iii  # noqa: E402
from repro.nn.backend import qkernel  # noqa: E402
from repro.serve import MicroBatchEngine  # noqa: E402

INPUT_BITS = 128

#: name -> Table 3 factory.  MLP III is the paper's best distinguisher
#: (two 1024-wide GEMMs — the int8 showcase); CNN II's 3072-column
#: im2col matmul quantizes too; LSTM II is weight-only under int8, so
#: its entries pin the "storage shrinks, latency stays" behaviour.
MODELS = {
    "mlp_iii": mlp_iii,
    "cnn_ii": cnn_ii,
    "lstm_ii": lstm_ii,
}

SCHEMES = ("f32", "f16", "int8")


def _bits(rng, rows):
    return (rng.random((rows, INPUT_BITS)) < 0.5).astype(np.float32)


def _variants(name):
    model = MODELS[name]().build((INPUT_BITS,), np.random.default_rng(7))
    model.compile(dtype="float32")
    return {
        "f32": model,
        "f16": quantize_model(model, "float16"),
        "int8": quantize_model(model, "int8"),
    }


#: Interleaved measurement passes per (model, rows) cell.
PASSES = 4


def _time_group(fns, rounds, warmup):
    """Block-interleaved latencies per label, trimmed to the fastest half.

    ``fns`` maps label -> thunk.  Each label runs its rounds in
    consecutive *blocks* (a serving process runs one variant repeatedly,
    so warm-cache consecutive calls are the deployment-realistic shape —
    fine-grained interleaving would evict the small int8 weight stream
    that is the whole point of the scheme), but the blocks of all labels
    are interleaved across :data:`PASSES` passes so a slow patch on this
    shared box lands on every label instead of biasing whichever scheme
    happened to run through it.  The slowest half of each label's rounds
    is dropped: the tail measures the neighbours, not the code.
    """
    per_block = max(1, rounds // PASSES)
    samples = {label: [] for label in fns}
    for pass_index in range(PASSES):
        for label, fn in fns.items():
            for _ in range(warmup if pass_index == 0 else 1):
                fn()
            for _ in range(per_block):
                start = time.perf_counter()
                fn()
                samples[label].append(time.perf_counter() - start)
    for label in samples:
        samples[label].sort()
        samples[label] = samples[label][: max(1, len(samples[label]) // 2)]
    return samples


def _entry(name, samples, **extras):
    entry = {
        "name": name,
        "mean_s": statistics.fmean(samples),
        "stddev_s": statistics.pstdev(samples),
        "rounds": len(samples),
    }
    entry.update(extras)
    return entry


def run(quick: bool) -> dict:
    rng = np.random.default_rng(0xBE9C)
    # Quick mode cuts rounds, never shapes: entry names must match the
    # committed full-mode baseline so check_regression compares them.
    single_rounds = 8 if quick else 60
    batch_rounds = 4 if quick else 14
    warmup = 1 if quick else 3
    batch_rows = 512
    serve_rows = (32, 256)

    entries = []
    for model_name in MODELS:
        variants = _variants(model_name)
        for rows, rounds in ((1, single_rounds), (batch_rows, batch_rounds)):
            x = _bits(rng, rows)
            fns = {
                scheme: (
                    lambda model=variants[scheme]: model.predict_proba(
                        x, batch_size=rows
                    )
                )
                for scheme in SCHEMES
            }
            samples = _time_group(fns, rounds, warmup)
            f32_mean = statistics.fmean(samples["f32"])
            for scheme in SCHEMES:
                extras = {"scheme": scheme, "rows": rows}
                if scheme != "f32":
                    extras["speedup_vs_f32"] = f32_mean / statistics.fmean(
                        samples[scheme]
                    )
                entries.append(
                    _entry(
                        f"predict_{model_name}_{scheme}_rows{rows}",
                        samples[scheme],
                        **extras,
                    )
                )

    # The serving path: engine submit -> coalesce -> fused predict, the
    # latency a /v1/classify caller actually sees (minus HTTP framing).
    serve_variants = _variants("mlp_iii")
    for rows in serve_rows:
        x = _bits(rng, rows)
        engines = {
            scheme: MicroBatchEngine(
                serve_variants[scheme], max_batch=max(rows, 1), max_wait_ms=0.1
            )
            for scheme in ("f32", "int8")
        }
        try:
            fns = {
                scheme: (lambda engine=engine: engine.classify(x))
                for scheme, engine in engines.items()
            }
            samples = _time_group(fns, max(2, batch_rounds), warmup)
        finally:
            for engine in engines.values():
                engine.stop()
        f32_mean = statistics.fmean(samples["f32"])
        for scheme in ("f32", "int8"):
            extras = {"scheme": scheme, "rows": rows}
            if scheme != "f32":
                extras["speedup_vs_f32"] = f32_mean / statistics.fmean(
                    samples[scheme]
                )
            entries.append(
                _entry(
                    f"serve_mlp_iii_{scheme}_rows{rows}",
                    samples[scheme],
                    **extras,
                )
            )

    return {
        "suite": "quant",
        "quick": bool(quick),
        "quant_kernel": qkernel.available(),
        "benchmarks": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="few-round smoke timings"
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=BENCH_DIR,
        help="where to write BENCH_quant.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    report = run(args.quick)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    out_path = args.output_dir / "BENCH_quant.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    for entry in report["benchmarks"]:
        speedup = entry.get("speedup_vs_f32")
        note = f"  ({speedup:.2f}x vs f32)" if speedup else ""
        print(f"{entry['name']}: {entry['mean_s'] * 1e3:.3f} ms{note}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
