"""GIFT-64 (Banik et al., CHES 2017) and a 16-bit scaled SPN.

GIFT-64 is the paper's running example for the non-Markov discussion
(§2.1, Figure 1 uses its S-box) and its named "future work" target.  It
is a 28-round SPN: 4-bit S-box ``GS = 1A4C6F392DB7508E``, the bit
permutation

    ``P64(i) = 4*(i // 16) + 16*((3*((i % 16) // 4) + (i % 4)) % 4) + (i % 4)``

and a partial 32-bit round key XORed into bit positions ``4i`` / ``4i+1``
plus round constants from a 6-bit LFSR.

``Gift16`` is a 4-S-box scaled-down SPN (our construction, documented
substitution) whose full 16-bit difference distribution is exactly
computable — the Markov counterpart of :class:`~repro.ciphers.toyspeck.ToySpeck`
for the all-in-one baseline.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ciphers.base import BlockCipher
from repro.errors import CipherError, ShapeError

#: The GIFT S-box as quoted in the paper (§2.1): 1A4C6F392DB7508E.
GIFT_SBOX = (0x1, 0xA, 0x4, 0xC, 0x6, 0xF, 0x3, 0x9,
             0x2, 0xD, 0xB, 0x7, 0x5, 0x0, 0x8, 0xE)

GIFT64_ROUNDS = 28
GIFT64_BLOCK_BITS = 64
GIFT64_KEY_BITS = 128


def _inverse_table(table: Sequence[int]) -> Tuple[int, ...]:
    inv = [0] * len(table)
    for i, v in enumerate(table):
        inv[v] = i
    return tuple(inv)


GIFT_SBOX_INV = _inverse_table(GIFT_SBOX)


def gift64_bit_permutation() -> Tuple[int, ...]:
    """The GIFT-64 bit permutation as a target-position table.

    ``perm[i]`` is the position bit ``i`` moves *to*.
    """
    return tuple(
        4 * (i // 16) + 16 * ((3 * ((i % 16) // 4) + (i % 4)) % 4) + (i % 4)
        for i in range(64)
    )


GIFT64_PERM = gift64_bit_permutation()
GIFT64_PERM_INV = _inverse_table(GIFT64_PERM)


def round_constants(rounds: int) -> List[int]:
    """The 6-bit LFSR round-constant sequence (01, 03, 07, 0F, 1F, 3E, ...)."""
    constants = []
    c = 0
    for _ in range(rounds):
        c = ((c << 1) & 0x3F) | (1 ^ ((c >> 5) & 1) ^ ((c >> 4) & 1))
        constants.append(c)
    return constants


class GiftSbox:
    """The 4-bit GIFT S-box with lookup helpers (scalar and batched)."""

    table = GIFT_SBOX
    inverse_table = GIFT_SBOX_INV

    _arr = np.array(GIFT_SBOX, dtype=np.uint8)
    _inv_arr = np.array(GIFT_SBOX_INV, dtype=np.uint8)

    @classmethod
    def forward(cls, nibble):
        """Apply the S-box to a scalar nibble or a uint8 array of nibbles."""
        if isinstance(nibble, (int, np.integer)):
            return cls.table[int(nibble) & 0xF]
        return cls._arr[np.asarray(nibble, dtype=np.uint8) & np.uint8(0xF)]

    @classmethod
    def inverse(cls, nibble):
        """Apply the inverse S-box."""
        if isinstance(nibble, (int, np.integer)):
            return cls.inverse_table[int(nibble) & 0xF]
        return cls._inv_arr[np.asarray(nibble, dtype=np.uint8) & np.uint8(0xF)]


def _sub_cells(state: int, inverse: bool = False) -> int:
    table = GIFT_SBOX_INV if inverse else GIFT_SBOX
    out = 0
    for i in range(16):
        out |= table[(state >> (4 * i)) & 0xF] << (4 * i)
    return out


def _perm_bits(state: int, perm: Sequence[int]) -> int:
    out = 0
    for i in range(64):
        out |= ((state >> i) & 1) << perm[i]
    return out


def _round_key_and_update(key_words: List[int]) -> Tuple[int, List[int]]:
    """Extract the GIFT-64 round key and rotate the key state.

    Key state is eight 16-bit words ``k7 .. k0``; ``U = k1``, ``V = k0``;
    ``U_i`` lands on bit ``4i + 1``, ``V_i`` on bit ``4i``.  The state
    update is ``k7..k0 <- (k1 >>> 2) || (k0 >>> 12) || k7 || ... || k2``.
    """
    k = key_words
    u, v = k[1], k[0]
    rk = 0
    for i in range(16):
        rk |= ((u >> i) & 1) << (4 * i + 1)
        rk |= ((v >> i) & 1) << (4 * i)
    rot2 = ((k[1] >> 2) | (k[1] << 14)) & 0xFFFF
    rot12 = ((k[0] >> 12) | (k[0] << 4)) & 0xFFFF
    new_key = [k[2], k[3], k[4], k[5], k[6], k[7], rot12, rot2]
    return rk, new_key


def _constant_mask(constant: int) -> int:
    mask = 1 << 63
    for bit_index, position in enumerate((3, 7, 11, 15, 19, 23)):
        mask_bit = (constant >> bit_index) & 1
        mask |= mask_bit << position
    return mask


class Gift64:
    """Scalar GIFT-64 with encryption and decryption.

    The block is a 64-bit integer, the key a 128-bit integer interpreted
    as words ``k7 || k6 || ... || k0`` (``k7`` most significant).
    """

    rounds_default = GIFT64_ROUNDS

    def __init__(self, rounds: int = GIFT64_ROUNDS):
        if not 1 <= rounds <= GIFT64_ROUNDS:
            raise CipherError(
                f"GIFT-64 rounds must be in [1, {GIFT64_ROUNDS}], got {rounds}"
            )
        self.rounds = rounds
        self._constants = round_constants(rounds)

    @staticmethod
    def _key_words(key: int) -> List[int]:
        if not 0 <= key < 1 << GIFT64_KEY_BITS:
            raise CipherError("GIFT-64 key must be a 128-bit integer")
        return [(key >> (16 * i)) & 0xFFFF for i in range(8)]

    def round_keys(self, key: int) -> List[int]:
        """Expand ``key`` into per-round 64-bit masks (round key + constants)."""
        words = self._key_words(key)
        masks = []
        for r in range(self.rounds):
            rk, words = _round_key_and_update(words)
            masks.append(rk ^ _constant_mask(self._constants[r]))
        return masks

    def encrypt(self, plaintext: int, key: int) -> int:
        """Encrypt one 64-bit block."""
        if not 0 <= plaintext < 1 << GIFT64_BLOCK_BITS:
            raise CipherError("GIFT-64 block must be a 64-bit integer")
        state = plaintext
        for mask in self.round_keys(key):
            state = _sub_cells(state)
            state = _perm_bits(state, GIFT64_PERM)
            state ^= mask
        return state

    def decrypt(self, ciphertext: int, key: int) -> int:
        """Decrypt one 64-bit block (inverse of :meth:`encrypt`)."""
        state = ciphertext
        for mask in reversed(self.round_keys(key)):
            state ^= mask
            state = _perm_bits(state, GIFT64_PERM_INV)
            state = _sub_cells(state, inverse=True)
        return state


# --------------------------------------------------------------------------
# Vectorised GIFT-64: table-driven batch encryption.
# --------------------------------------------------------------------------

_BATCH_TABLES = {}


def _batch_tables():
    """Lazily build the 16-bit-chunk lookup tables for batched GIFT-64.

    * ``sbox16`` applies the S-box to the four nibbles of a chunk;
    * ``perm[c]`` maps chunk ``c``'s 16 bits to their permuted 64-bit
      positions;
    * ``spread`` maps a 16-bit word to the 64-bit value with bit ``i``
      at position ``4 * i`` (for the U/V round-key injection).
    """
    if _BATCH_TABLES:
        return _BATCH_TABLES
    values = np.arange(1 << 16, dtype=np.uint32)
    sbox16 = np.zeros(1 << 16, dtype=np.uint16)
    for j in range(4):
        nib = (values >> np.uint32(4 * j)) & np.uint32(0xF)
        sbox16 |= GiftSbox._arr[nib].astype(np.uint16) << np.uint16(4 * j)
    perm_tables = []
    for chunk in range(4):
        table = np.zeros(1 << 16, dtype=np.uint64)
        for bit in range(16):
            src = 16 * chunk + bit
            dst = GIFT64_PERM[src]
            table |= (
                ((values >> np.uint32(bit)) & np.uint32(1)).astype(np.uint64)
                << np.uint64(dst)
            )
        perm_tables.append(table)
    spread = np.zeros(1 << 16, dtype=np.uint64)
    for bit in range(16):
        spread |= (
            ((values >> np.uint32(bit)) & np.uint32(1)).astype(np.uint64)
            << np.uint64(4 * bit)
        )
    _BATCH_TABLES.update(
        {"sbox16": sbox16, "perm": perm_tables, "spread": spread}
    )
    return _BATCH_TABLES


def _rotr16_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    return ((arr >> np.uint16(amount)) | (arr << np.uint16(16 - amount))).astype(
        np.uint16
    )


def expand_key_batch(keys: np.ndarray, rounds: int) -> np.ndarray:
    """Vectorised GIFT-64 key schedule.

    ``keys`` is ``(n, 8)`` uint16 (``k0`` first); returns the per-round
    64-bit masks (round key XOR constants) as ``(n, rounds)`` uint64.
    """
    arr = np.asarray(keys, dtype=np.uint16)
    if arr.ndim != 2 or arr.shape[1] != 8:
        raise ShapeError(f"expected (n, 8) key words, got shape {arr.shape}")
    tables = _batch_tables()
    spread = tables["spread"]
    constants = round_constants(rounds)
    state = [arr[:, i].copy() for i in range(8)]
    masks = np.empty((arr.shape[0], rounds), dtype=np.uint64)
    for r in range(rounds):
        u, v = state[1], state[0]
        rk = (spread[u] << np.uint64(1)) | spread[v]
        masks[:, r] = rk ^ np.uint64(_constant_mask(constants[r]))
        rot2 = _rotr16_arr(state[1], 2)
        rot12 = _rotr16_arr(state[0], 12)
        state = [state[2], state[3], state[4], state[5],
                 state[6], state[7], rot12, rot2]
    return masks


def encrypt_batch(
    plaintexts: np.ndarray, keys: np.ndarray, rounds: int = GIFT64_ROUNDS
) -> np.ndarray:
    """Vectorised GIFT-64 encryption of ``(n,)`` uint64 blocks.

    Bit-identical to :meth:`Gift64.encrypt` (cross-checked in the test
    suite) at numpy-table speed — fast enough to feed the distinguisher
    data pipeline.
    """
    pts = np.asarray(plaintexts, dtype=np.uint64)
    if pts.ndim != 1:
        raise ShapeError(f"expected (n,) uint64 blocks, got shape {pts.shape}")
    masks = expand_key_batch(keys, rounds)
    if masks.shape[0] != pts.shape[0]:
        raise ShapeError("plaintext and key batch sizes differ")
    tables = _batch_tables()
    sbox16 = tables["sbox16"]
    perm = tables["perm"]
    chunk_mask = np.uint64(0xFFFF)
    state = pts.copy()
    for r in range(rounds):
        out = np.zeros_like(state)
        for chunk in range(4):
            piece = (state >> np.uint64(16 * chunk)) & chunk_mask
            substituted = sbox16[piece.astype(np.uint32)]
            out |= perm[chunk][substituted]
        state = out ^ masks[:, r]
    return state


# --------------------------------------------------------------------------
# Gift16: a 16-bit scaled SPN for exact all-in-one computation.
# --------------------------------------------------------------------------

def gift16_bit_permutation() -> Tuple[int, ...]:
    """A GIFT-style bit permutation on 16 bits (4 S-boxes).

    Bit ``4j + b`` of the S-box layer output moves to position
    ``4 * ((j + b) % 4) + b`` — each S-box spreads its four output bits
    over all four S-boxes of the next round, the defining property of
    the GIFT wiring.
    """
    perm = [0] * 16
    for j in range(4):
        for b in range(4):
            perm[4 * j + b] = 4 * ((j + b) % 4) + b
    return tuple(perm)


GIFT16_PERM = gift16_bit_permutation()
GIFT16_PERM_INV = _inverse_table(GIFT16_PERM)
GIFT16_ROUNDS = 8


def _perm16(state: int, perm: Sequence[int]) -> int:
    out = 0
    for i in range(16):
        out |= ((state >> i) & 1) << perm[i]
    return out


def _perm16_table(perm: Sequence[int]) -> np.ndarray:
    table = np.empty(1 << 16, dtype=np.uint16)
    for value in range(1 << 16):
        table[value] = _perm16(value, perm)
    return table


class Gift16(BlockCipher):
    """Keyed 16-bit GIFT-like SPN: 4 GIFT S-boxes, GIFT-style wiring.

    The full round key (16 bits) is XORed after the permutation, so the
    cipher is Markov — the exact all-in-one distribution propagates by
    applying the S-box-layer DDT and re-indexing through the wiring
    (see :mod:`repro.diffcrypt.allinone`).
    """

    block_words = 1
    key_words = GIFT16_ROUNDS  # independent round keys
    word_width = 16

    def __init__(self, rounds: int = GIFT16_ROUNDS):
        if rounds > GIFT16_ROUNDS:
            raise CipherError(f"Gift16 has {GIFT16_ROUNDS} rounds, requested {rounds}")
        super().__init__(rounds)
        self._perm_table = _perm16_table(GIFT16_PERM)
        self._sbox_layer = self._build_sbox_layer_table()

    @staticmethod
    def _build_sbox_layer_table() -> np.ndarray:
        nibbles = np.arange(1 << 16, dtype=np.uint32)
        out = np.zeros(1 << 16, dtype=np.uint16)
        for j in range(4):
            nib = (nibbles >> np.uint32(4 * j)) & np.uint32(0xF)
            out |= GiftSbox._arr[nib].astype(np.uint16) << np.uint16(4 * j)
        return out

    def encrypt(self, plaintexts: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Encrypt ``(n, 1)`` uint16 blocks with ``(n, rounds)`` round keys."""
        pts = np.asarray(plaintexts, dtype=np.uint16)
        if pts.ndim == 2 and pts.shape[1] == 1:
            pts = pts[:, 0]
        if pts.ndim != 1:
            raise ShapeError(f"expected (n,) or (n, 1) blocks, got {pts.shape}")
        rks = np.asarray(keys, dtype=np.uint16)
        if rks.shape != (pts.shape[0], self.rounds):
            raise ShapeError(
                f"expected ({pts.shape[0]}, {self.rounds}) round keys, "
                f"got {rks.shape}"
            )
        state = pts.copy()
        for r in range(self.rounds):
            state = self._sbox_layer[state]
            state = self._perm_table[state]
            state ^= rks[:, r]
        return state[:, np.newaxis]
