"""End-to-end pipeline: search → train → register.

One declarative :class:`~repro.search.config.ScenarioSpec` drives the
whole chain the paper performs by hand:

1. **Search** (optional): run the evolutionary bias search over the
   spec's scenario family and take the global top-``num_differences``
   masks as the class differences.  Hand-given ``differences`` skip the
   search — or seed it, when both are present.
2. **Train**: the standard offline phase of
   :class:`~repro.core.distinguisher.MLDistinguisher` on the built
   scenario (sharded generation and the dataset cache apply unchanged —
   the scenario fingerprint covers the discovered difference set, so
   searched scenarios can never collide with paper scenarios in
   ``REPRO_DATASET_CACHE``).
3. **Register** (optional): persist the trained model in a
   :class:`~repro.serve.ModelRegistry`; the manifest's ``search``
   section records the discovered differences, their bias scores and
   the search budget, so a served model is auditable back to the
   difference set it was trained on.

Every stage reports through :mod:`repro.obs` spans and the process
metrics registry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.distinguisher import MLDistinguisher
from repro.errors import SearchError
from repro.nn.architectures import build_mlp
from repro.obs import log as obs_log
from repro.obs.trace import span
from repro.search.config import ScenarioSpec
from repro.search.evolve import SearchConfig, SearchResult, evolve_differences
from repro.search.oracle import BiasScoringOracle

_log = obs_log.get_logger("repro.search")

#: Default offline budget of the pipeline's training stage (small: the
#: CLI is a scenario generator, not a paper-scale table run).
DEFAULT_TRAIN_SAMPLES = 12_000
DEFAULT_TRAIN_EPOCHS = 3
DEFAULT_HIDDEN = (64, 128)


def run_search(
    spec: ScenarioSpec, workers: Optional[int] = None
) -> SearchResult:
    """The search stage alone: ranked differences for ``spec``."""
    if spec.search is None:
        raise SearchError(f"spec {spec.name!r} has no 'search' section")
    config = SearchConfig.from_env(workers=workers, **spec.search)
    prototype = spec.prototype()
    oracle = BiasScoringOracle(
        prototype,
        n_samples=config.n_samples,
        rng=config.seed,
        workers=config.workers,
    )
    seeds = None
    if spec.differences is not None:
        seeds = np.asarray(
            spec.differences, dtype=prototype.difference_masks.dtype
        )
    allowed = spec.builder.allowed_bits(**spec.params)
    top_k = max(config.top_k, spec.num_differences)
    config = SearchConfig.from_env(
        workers=workers, **{**spec.search, "top_k": top_k}
    )
    return evolve_differences(oracle, config, allowed=allowed, seeds=seeds)


def run_search_pipeline(
    spec: ScenarioSpec,
    registry=None,
    workers: Optional[int] = None,
    verbose: bool = False,
) -> dict:
    """Run the full search → train → register chain for one spec.

    ``registry`` is a :class:`~repro.serve.ModelRegistry` (or ``None``
    to skip registration).  Returns a JSON-ready summary with the
    difference set actually used, the search digest (when a search
    ran), the training report, and the registered model id (when a
    registry was given).
    """
    result = None
    with span("search.pipeline", scenario=spec.scenario, spec=spec.name):
        if spec.search is not None:
            result = run_search(spec, workers=workers)
            masks = result.top(min(spec.num_differences,
                                   result.ranked_masks.shape[0]))
            if masks.shape[0] < 2:
                raise SearchError(
                    f"search returned {masks.shape[0]} usable difference(s); "
                    "a scenario needs at least 2"
                )
        else:
            masks = spec.differences
        scenario = spec.build_scenario(masks)

        train = dict(spec.train)
        num_samples = int(train.get("num_samples", DEFAULT_TRAIN_SAMPLES))
        epochs = int(train.get("epochs", DEFAULT_TRAIN_EPOCHS))
        hidden = list(train.get("hidden", DEFAULT_HIDDEN))
        seed = train.get("seed", 0)
        distinguisher = MLDistinguisher(
            scenario,
            model=build_mlp(hidden, "relu", num_classes=scenario.num_classes),
            epochs=epochs,
            batch_size=int(train.get("batch_size", 128)),
            rng=seed,
            workers=workers,
        )
        with span("search.train", samples=num_samples):
            report = distinguisher.train(
                num_samples,
                significance=float(train.get("significance", 1e-3)),
                verbose=verbose,
            )

        summary = {
            "name": spec.name,
            "scenario": spec.scenario,
            "params": dict(spec.params),
            "differences": np.asarray(scenario.difference_masks).tolist(),
            "search": result.summary() if result is not None else None,
            "training": {
                "validation_accuracy": report.validation_accuracy,
                "training_accuracy": report.training_accuracy,
                "num_samples": report.num_samples,
                "num_classes": report.num_classes,
            },
        }
        if registry is not None:
            record = registry.register(
                distinguisher.model,
                spec.register.get("name", spec.name),
                scenario=scenario,
                report=report,
                search=result.summary() if result is not None else None,
            )
            summary["model_id"] = record.model_id
            summary["version"] = record.version
            _log.info(
                "search.registered",
                name=record.name,
                model_id=record.model_id[:12],
            )
    return summary
