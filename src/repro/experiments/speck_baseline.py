"""§2.3 background: Gohr-style SPECK distinguisher + exact all-in-one.

Two experiments:

* :func:`run_speck_baseline` — the real-vs-random neural distinguisher
  on round-reduced SPECK-32/64 with Gohr's input difference
  ``0x0040/0000``, showing the accuracy decay with rounds.
* :func:`run_toyspeck_allinone` — on ToySpeck the exact all-in-one
  (Markov) distribution is computable, so the ML accuracy can be placed
  against its Bayes-optimal ceiling — the comparison Gohr could only
  make with 34 GB of precomputation on SPECK-32/64.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import SpeckRealOrRandomScenario, ToySpeckScenario
from repro.diffcrypt.allinone import toyspeck_allinone
from repro.errors import DistinguisherAborted
from repro.experiments.config import default_scale
from repro.nn.architectures import build_mlp
from repro.utils.rng import derive_rng, make_rng


def run_speck_baseline(
    rounds: Sequence[int] = (3, 4, 5, 6),
    num_samples: Optional[int] = None,
    epochs: int = 5,
    delta: int = 0x0040_0000,
    rng=None,
) -> Dict:
    """Train real-vs-random MLP distinguishers on round-reduced SPECK."""
    scale = default_scale()
    n_samples = num_samples if num_samples is not None else scale.offline_samples
    generator = make_rng(rng)
    rows = []
    for r in rounds:
        scenario = SpeckRealOrRandomScenario(rounds=r, delta=delta)
        x, y = scenario.generate_dataset(
            max(1, n_samples // 2), rng=derive_rng(generator, "data", r)
        )
        model = build_mlp([64, 256, 256], "relu")
        model.build((x.shape[1],), rng=derive_rng(generator, "weights", r))
        model.compile()
        cut = int(round(x.shape[0] * 0.9))
        model.fit(
            x[:cut],
            y[:cut],
            epochs=epochs,
            batch_size=256,
            rng=derive_rng(generator, "batches", r),
        )
        _, metrics = model.evaluate(x[cut:], y[cut:])
        rows.append(
            {
                "rounds": r,
                "measured": metrics["accuracy"],
                "num_samples": x.shape[0],
            }
        )
    return {"experiment": "speck-baseline", "delta": delta, "rows": rows}


def run_toyspeck_allinone(
    rounds: Sequence[int] = (2, 3, 4),
    deltas: Sequence[int] = (0x0040, 0x2000),
    num_samples: Optional[int] = None,
    epochs: int = 8,
    max_active: int = 4096,
    rng=None,
) -> Dict:
    """ML accuracy vs the exact all-in-one Bayes ceiling on ToySpeck."""
    scale = default_scale()
    n_samples = num_samples if num_samples is not None else scale.offline_samples
    generator = make_rng(rng)
    rows = []
    for r in rounds:
        exact = toyspeck_allinone(list(deltas), r, max_active=max_active)
        scenario = ToySpeckScenario(rounds=r, deltas=deltas)
        distinguisher = MLDistinguisher(
            scenario,
            model=build_mlp([64, 256], "relu", num_classes=len(deltas)),
            epochs=epochs,
            batch_size=256,
            rng=derive_rng(generator, "toyspeck", r),
        )
        row = {
            "rounds": r,
            "bayes_accuracy": exact.bayes_accuracy(),
            "advantage_vs_random": exact.advantage_vs_random(),
        }
        try:
            report = distinguisher.train(num_samples=n_samples)
            row["measured"] = report.validation_accuracy
            row["aborted"] = False
        except DistinguisherAborted:
            row["measured"] = 1.0 / len(deltas)
            row["aborted"] = True
        rows.append(row)
    return {
        "experiment": "toyspeck-allinone",
        "deltas": list(deltas),
        "rows": rows,
    }
